//! Dense, row-major matrix and vector kernels.
//!
//! The Sizey model pool only ever deals with small, dense design matrices
//! (tens to a few thousand rows, a handful of feature columns), so a simple
//! contiguous row-major layout with cache-friendly loops is both sufficient
//! and fast. All kernels are allocation-conscious: the hot paths
//! ([`Matrix::matmul`], [`Matrix::solve`]) reuse buffers where possible and
//! avoid bounds checks in inner loops via iterator/chunk access.

use std::fmt;

/// A dense, row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced by matrix kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the expected shape relationship.
        expected: String,
        /// Human-readable description of what was provided.
        got: String,
    },
    /// The system matrix is singular (or numerically indistinguishable from singular).
    Singular,
    /// An empty matrix was provided where data is required.
    Empty,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::Empty => write!(f, "matrix is empty"),
        }
    }
}

impl std::error::Error for MatrixError {}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns a single row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of a single row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Extracts a column as an owned vector.
    pub fn column(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Appends a row to the matrix.
    ///
    /// # Panics
    /// Panics if the row length does not match the column count (unless the
    /// matrix is still empty, in which case the row defines the width).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length must match column count");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Dense matrix multiplication `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::ShapeMismatch {
                expected: format!("left cols == right rows ({})", self.cols),
                got: format!(
                    "{}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the innermost accesses contiguous in both
        // the output row and the right-hand-side row.
        for i in 0..self.rows {
            let a_row = self.row(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.cols != v.len() {
            return Err(MatrixError::ShapeMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("length {}", v.len()),
            });
        }
        Ok(self.iter_rows().map(|row| dot(row, v)).collect())
    }

    /// Computes `self^T * self`, the Gram matrix of the design matrix.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for row in self.iter_rows() {
            for (i, &xi) in row.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &xj) in out_row.iter_mut().zip(row.iter()) {
                    *o += xi * xj;
                }
            }
        }
        out
    }

    /// Computes `self^T * y` for a response vector `y`.
    pub fn xty(&self, y: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.rows != y.len() {
            return Err(MatrixError::ShapeMismatch {
                expected: format!("vector of length {}", self.rows),
                got: format!("length {}", y.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (row, &yi) in self.iter_rows().zip(y.iter()) {
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += x * yi;
            }
        }
        Ok(out)
    }

    /// Solves the linear system `self * x = b` for square `self` using
    /// Gaussian elimination with partial pivoting.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::ShapeMismatch {
                expected: "square matrix".to_string(),
                got: format!("{}x{}", self.rows, self.cols),
            });
        }
        if self.rows != b.len() {
            return Err(MatrixError::ShapeMismatch {
                expected: format!("rhs of length {}", self.rows),
                got: format!("length {}", b.len()),
            });
        }
        let n = self.rows;
        if n == 0 {
            return Err(MatrixError::Empty);
        }
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivoting: find the row with the largest absolute value
            // in this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(MatrixError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for c in (col + 1)..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for c in (col + 1)..n {
                sum -= a[col * n + c] * x[c];
            }
            x[col] = sum / a[col * n + col];
        }
        Ok(x)
    }

    /// Adds `lambda` to every diagonal element (in place). Used for ridge
    /// regularisation of Gram matrices.
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equally sized slices.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equally sized slices.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// `axpy`: `y += alpha * x` elementwise.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() <= eps
    }

    #[test]
    fn zeros_has_requested_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 0)], 3.0);
        assert_eq!(t[(0, 1)], 4.0);
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_matches_manual_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn gram_is_symmetric_and_matches_xtx() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = x.gram();
        let expected = x.transpose().matmul(&x).unwrap();
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx_eq(g[(r, c)], expected[(r, c)], 1e-10));
                assert!(approx_eq(g[(r, c)], g[(c, r)], 1e-10));
            }
        }
    }

    #[test]
    fn xty_matches_transpose_matvec() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let y = vec![1.0, 0.5, 2.0];
        let a = x.xty(&y).unwrap();
        let b = x.transpose().matvec(&y).unwrap();
        for (ai, bi) in a.iter().zip(b.iter()) {
            assert!(approx_eq(*ai, *bi, 1e-10));
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x_true = [1.0, 2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-9));
        assert!(approx_eq(x[1], 2.0, 1e-9));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero on the diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 1.0]]);
        let b = vec![1.0, 3.0];
        let x = a.solve(&b).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-9));
        assert!(approx_eq(x[1], 1.0, 1e-9));
    }

    #[test]
    fn solve_detects_singular_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MatrixError::Singular));
    }

    #[test]
    fn solve_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(MatrixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut m = Matrix::zeros(3, 3);
        m.add_diagonal(2.5);
        assert_eq!(m[(0, 0)], 2.5);
        assert_eq!(m[(1, 1)], 2.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn dot_and_distances_are_consistent() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(squared_distance(&a, &b), 27.0);
        assert!(approx_eq(
            euclidean_distance(&a, &b),
            27.0_f64.sqrt(),
            1e-12
        ));
    }

    #[test]
    fn axpy_and_scale_modify_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, [6.0, 12.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!(approx_eq(m.frobenius_norm(), 5.0, 1e-12));
    }
}
