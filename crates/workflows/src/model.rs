//! Workflow, task-type and task-instance model.
//!
//! A workflow is a set of abstract task types (the paper's black-box
//! templates `B`); every task type is instantiated into many physical task
//! instances `T` with concrete inputs. The DAG edges only influence
//! scheduling order, which is out of scope per assumption A2, so instances
//! carry a submission sequence number instead of explicit edges.

use crate::memfn::{InputModel, MemoryModel, RuntimeModel};
use serde::{Deserialize, Serialize};
use sizey_provenance::{MachineId, TaskTypeId};

/// Qualitative resource footprint of a task type, used to reproduce the
/// CPU / I/O distributions of the paper's Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceFootprint {
    /// Mean CPU utilisation in percent (can exceed 100 for multi-threaded
    /// tools, as in the paper's log-scale plot).
    pub cpu_utilization_pct: f64,
    /// Spread (coefficient of variation) of the CPU utilisation.
    pub cpu_cv: f64,
    /// I/O read volume as a multiple of the input size.
    pub io_read_factor: f64,
    /// I/O write volume as a multiple of the input size.
    pub io_write_factor: f64,
}

impl Default for ResourceFootprint {
    fn default() -> Self {
        ResourceFootprint {
            cpu_utilization_pct: 100.0,
            cpu_cv: 0.3,
            io_read_factor: 1.0,
            io_write_factor: 0.5,
        }
    }
}

/// Specification of one abstract task type within a workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTypeSpec {
    /// Task type name (unique within the workflow).
    pub name: String,
    /// Number of physical instances generated per workflow execution.
    pub instances: usize,
    /// Input-size distribution.
    pub input_model: InputModel,
    /// Input-size to peak-memory relationship.
    pub memory_model: MemoryModel,
    /// Input-size to runtime relationship.
    pub runtime_model: RuntimeModel,
    /// CPU / I/O footprint for the Fig. 7 reproduction.
    pub footprint: ResourceFootprint,
    /// The user-provided memory request from the workflow definition
    /// (the Workflow-Presets baseline), in bytes.
    pub preset_memory_bytes: f64,
}

impl TaskTypeSpec {
    /// The task type id used in provenance records.
    pub fn id(&self) -> TaskTypeId {
        TaskTypeId::new(self.name.clone())
    }
}

/// Specification of a complete workflow: its name and task types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkflowSpec {
    /// Workflow name, e.g. `rnaseq`.
    pub name: String,
    /// All task types of the workflow.
    pub task_types: Vec<TaskTypeSpec>,
}

impl WorkflowSpec {
    /// Number of task types (Table I, column 2).
    pub fn n_task_types(&self) -> usize {
        self.task_types.len()
    }

    /// Total number of physical task instances.
    pub fn total_instances(&self) -> usize {
        self.task_types.iter().map(|t| t.instances).sum()
    }

    /// Average number of instances per task type (Table I, column 3).
    pub fn avg_instances_per_type(&self) -> f64 {
        if self.task_types.is_empty() {
            return 0.0;
        }
        self.total_instances() as f64 / self.n_task_types() as f64
    }

    /// Looks up a task type spec by name.
    pub fn task_type(&self, name: &str) -> Option<&TaskTypeSpec> {
        self.task_types.iter().find(|t| t.name == name)
    }
}

/// One generated physical task instance ready to be replayed through the
/// online simulator. The "true" peak memory and runtime are what the task
/// *would* consume — the predictor never sees them before completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskInstance {
    /// Workflow this instance belongs to.
    pub workflow: String,
    /// Abstract task type.
    pub task_type: TaskTypeId,
    /// Machine configuration the instance is placed on.
    pub machine: MachineId,
    /// Submission order within the workflow execution.
    pub sequence: u64,
    /// Input size in bytes (visible to predictors at submission time).
    pub input_bytes: f64,
    /// Ground-truth peak memory consumption in bytes.
    pub true_peak_bytes: f64,
    /// Ground-truth runtime in seconds (for a successful attempt).
    pub base_runtime_seconds: f64,
    /// The workflow developer's memory request for this task type, in bytes.
    pub preset_memory_bytes: f64,
    /// CPU utilisation sample in percent (Fig. 7 reproduction only).
    pub cpu_utilization_pct: f64,
    /// I/O read volume in bytes (Fig. 7 reproduction only).
    pub io_read_bytes: f64,
    /// I/O write volume in bytes (Fig. 7 reproduction only).
    pub io_write_bytes: f64,
}

impl TaskInstance {
    /// Feature vector exposed to prediction methods at submission time.
    pub fn features(&self) -> Vec<f64> {
        vec![self.input_bytes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, instances: usize) -> TaskTypeSpec {
        TaskTypeSpec {
            name: name.to_string(),
            instances,
            input_model: InputModel::Uniform { lo: 1e9, hi: 2e9 },
            memory_model: MemoryModel::Linear {
                slope: 2.0,
                intercept: 1e9,
                noise_cv: 0.05,
            },
            runtime_model: RuntimeModel {
                base_seconds: 60.0,
                seconds_per_gb: 10.0,
                noise_cv: 0.1,
            },
            footprint: ResourceFootprint::default(),
            preset_memory_bytes: 8e9,
        }
    }

    #[test]
    fn workflow_inventory_matches_spec() {
        let wf = WorkflowSpec {
            name: "demo".to_string(),
            task_types: vec![spec("a", 10), spec("b", 30)],
        };
        assert_eq!(wf.n_task_types(), 2);
        assert_eq!(wf.total_instances(), 40);
        assert_eq!(wf.avg_instances_per_type(), 20.0);
        assert!(wf.task_type("a").is_some());
        assert!(wf.task_type("missing").is_none());
    }

    #[test]
    fn empty_workflow_has_zero_average() {
        let wf = WorkflowSpec {
            name: "empty".to_string(),
            task_types: vec![],
        };
        assert_eq!(wf.avg_instances_per_type(), 0.0);
    }

    #[test]
    fn task_type_id_round_trips_name() {
        assert_eq!(spec("lcextrap", 1).id(), TaskTypeId::new("lcextrap"));
    }

    #[test]
    fn instance_features_expose_input_size() {
        let inst = TaskInstance {
            workflow: "demo".into(),
            task_type: TaskTypeId::new("a"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 3e9,
            true_peak_bytes: 7e9,
            base_runtime_seconds: 100.0,
            preset_memory_bytes: 8e9,
            cpu_utilization_pct: 120.0,
            io_read_bytes: 3e9,
            io_write_bytes: 1e9,
        };
        assert_eq!(inst.features(), vec![3e9]);
    }
}
