//! Fig. 10 — impact of the RAQ parameter α on wastage over time for two
//! rnaseq tasks (FastQC and MarkDuplicates (Picard)).
//!
//! Run with `cargo run -p sizey-bench --release --bin fig10_alpha_sweep`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings, MethodSpec};
use sizey_core::SizeyConfig;
use sizey_provenance::TaskTypeId;
use sizey_sim::{replay_workflow, SimulationConfig};
use sizey_workflows::{generate_workflow, workflow_by_name, GeneratorConfig};

const ALPHAS: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
const TASKS: [&str; 2] = ["FastQC", "MarkDuplicates (Picard)"];

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 10: wastage (GBh) of two rnaseq tasks as a function of alpha",
        &settings,
    );

    let spec = workflow_by_name("rnaseq").expect("rnaseq profile");
    let instances = generate_workflow(
        &spec,
        &GeneratorConfig::scaled(settings.scale.max(0.3), settings.seed),
    );
    let sim = SimulationConfig::default();

    let mut rows = Vec::new();
    for alpha in ALPHAS {
        let mut sizey = MethodSpec::Sizey(SizeyConfig::default().with_alpha(alpha)).build();
        let report = replay_workflow("rnaseq", &instances, sizey.as_mut(), &sim);
        let per_type = report.wastage_by_task_type();
        let mut row = vec![fmt(alpha, 2)];
        for task in TASKS {
            row.push(fmt(
                per_type.get(&TaskTypeId::new(task)).copied().unwrap_or(0.0),
                3,
            ));
        }
        row.push(fmt(report.total_wastage_gbh(), 2));
        rows.push(row);
    }

    println!(
        "{}",
        render_table(
            &[
                "alpha",
                "FastQC GBh",
                "MarkDuplicates (Picard) GBh",
                "rnaseq total GBh"
            ],
            &rows
        )
    );
    println!("Paper reference (Fig. 10): FastQC tends to waste less at lower alpha values,");
    println!("MarkDuplicates shows the opposite pattern; overall no single alpha wins for");
    println!("all task types.");
}
