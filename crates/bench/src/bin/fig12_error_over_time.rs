//! Fig. 12 — trend of Sizey's relative memory prediction error (without
//! offsetting) over the number of executions of the Prokka task from the mag
//! workflow.
//!
//! Run with `cargo run -p sizey-bench --release --bin fig12_error_over_time`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings, MethodSpec};
use sizey_core::{OffsetMode, SizeyConfig};
use sizey_ml::dataset::Dataset;
use sizey_ml::linear::LinearRegression;
use sizey_ml::model::Regressor;
use sizey_sim::{replay_workflow, SimulationConfig};
use sizey_workflows::{generate_workflow, workflow_by_name, GeneratorConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 12: Sizey's relative prediction error over Prokka executions (mag, no offset)",
        &settings,
    );

    let spec = workflow_by_name("mag").expect("mag profile");
    // The paper replays 1171 Prokka instances; scale accordingly but keep at
    // least a few hundred so the trend is visible.
    let scale = settings.scale.clamp(0.2, 1.0);
    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(scale, settings.seed));

    let config = SizeyConfig {
        offset: OffsetMode::None,
        ..SizeyConfig::default()
    };
    let mut sizey = MethodSpec::Sizey(config).build();
    let report = replay_workflow(
        "mag",
        &instances,
        sizey.as_mut(),
        &SimulationConfig::default(),
    );

    let errors = report.prediction_error_over_time("Prokka");
    if errors.is_empty() {
        println!("No Prokka executions with model-based predictions were observed.");
        return;
    }

    // Bucket the executions into ten phases and report the mean error per
    // phase (the paper plots the regression trend over the raw points).
    let bucket = (errors.len() / 10).max(1);
    let mut rows = Vec::new();
    for (i, chunk) in errors.chunks(bucket).enumerate() {
        let mean = chunk.iter().map(|(_, e)| e).sum::<f64>() / chunk.len() as f64;
        rows.push(vec![
            format!("{}-{}", i * bucket + 1, i * bucket + chunk.len()),
            fmt(mean * 100.0, 2),
        ]);
    }
    println!(
        "{}",
        render_table(&["Executions", "Mean relative error %"], &rows)
    );

    // Linear trend of the error over the execution index.
    let xs: Vec<f64> = errors.iter().map(|(i, _)| *i as f64).collect();
    let ys: Vec<f64> = errors.iter().map(|(_, e)| *e * 100.0).collect();
    let mut trend = LinearRegression::with_defaults();
    trend
        .fit(&Dataset::from_univariate(&xs, &ys))
        .expect("fit trend");
    let slope = trend.coefficients()[1];
    println!(
        "Executions observed: {}; error trend slope: {} %-points per execution.",
        errors.len(),
        fmt(slope, 5)
    );
    println!("Paper reference (Fig. 12): the relative error decreases from ~10-11% towards");
    println!("~7-8% over 1171 Prokka executions — the trend slope should be negative.");
}
