//! Ablation — failure handling: Sizey's max-observed-then-double escalation
//! vs. plain doubling of the failed allocation vs. jumping straight to the
//! node maximum (Tovar-style) (DESIGN.md §5).
//!
//! Run with `cargo run -p sizey-bench --release --bin ablation_failure`.

use sizey_bench::{banner, fmt, generate_workloads, render_table, HarnessSettings, MethodSpec};
use sizey_core::SizeyPredictor;
use sizey_provenance::TaskRecord;
use sizey_sim::{
    replay_workflow, AttemptContext, MemoryPredictor, Prediction, SimulationConfig, TaskSubmission,
};

/// Wraps Sizey but overrides the retry policy, so only failure handling
/// differs between the variants.
struct RetryPolicyOverride {
    inner: SizeyPredictor,
    policy: Policy,
    node_memory_bytes: f64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Policy {
    /// Sizey's own policy (max observed, then doubling) — pass through.
    Sizey,
    /// Double the failed allocation, ignoring the observed maximum.
    PlainDoubling,
    /// Allocate the node maximum immediately after the first failure.
    NodeMaximum,
}

impl MemoryPredictor for RetryPolicyOverride {
    fn name(&self) -> String {
        match self.policy {
            Policy::Sizey => "Sizey (max-observed + doubling)".to_string(),
            Policy::PlainDoubling => "Plain doubling".to_string(),
            Policy::NodeMaximum => "Node maximum on failure".to_string(),
        }
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        match (self.policy, ctx.attempt) {
            (Policy::Sizey, _) | (_, 0) => self.inner.predict(task, ctx),
            (Policy::PlainDoubling, attempt) => {
                let base = self.inner.predict(task, AttemptContext::first());
                Prediction::simple(base.allocation_bytes * 2.0_f64.powi(attempt as i32))
            }
            (Policy::NodeMaximum, _) => Prediction::simple(self.node_memory_bytes),
        }
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.inner.observe(record);
    }
}

fn main() {
    let settings = HarnessSettings::from_env();
    banner("Ablation: failure-handling policy", &settings);

    let workloads = generate_workloads(&HarnessSettings {
        scale: settings.scale.min(0.1),
        ..settings
    });
    let sim = SimulationConfig::default();

    let mut rows = Vec::new();
    for policy in [Policy::Sizey, Policy::PlainDoubling, Policy::NodeMaximum] {
        let mut wastage = 0.0;
        let mut failures = 0usize;
        let mut name = String::new();
        for workload in &workloads {
            let mut predictor = RetryPolicyOverride {
                inner: MethodSpec::sizey_defaults()
                    .build_sizey()
                    .expect("a Sizey spec builds a Sizey predictor"),
                policy,
                node_memory_bytes: sim.node_memory_bytes,
            };
            let report = replay_workflow(
                &workload.spec.name,
                &workload.instances,
                &mut predictor,
                &sim,
            );
            wastage += report.total_wastage_gbh();
            failures += report.total_failures();
            name = report.method.clone();
        }
        rows.push(vec![name, fmt(wastage, 2), failures.to_string()]);
    }

    println!(
        "{}",
        render_table(&["Failure policy", "Total Wastage GBh", "Failures"], &rows)
    );
    println!("Expected shape: jumping to the node maximum minimises repeat failures but");
    println!("wastes enormous amounts of memory on each failed task; plain doubling needs");
    println!("more retries; Sizey's max-observed escalation balances the two.");
}
