//! Headline claim — Sizey reduces memory wastage by at least 24.68% (median
//! across workflows) compared to the best-performing state-of-the-art
//! baseline, and by ~60% aggregated over all workflows.
//!
//! Run with `cargo run -p sizey-bench --release --bin headline_summary`.

use sizey_bench::{
    banner, evaluate_all_methods, fmt, generate_workloads, render_table, HarnessSettings,
    MethodSpec,
};
use sizey_ml::metrics::median;
use sizey_sim::{aggregate_method, SimulationConfig};
use sizey_workflows::WORKFLOW_NAMES;

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Headline: Sizey's wastage reduction vs the best baseline",
        &settings,
    );

    let workloads = generate_workloads(&settings);
    let sim = SimulationConfig::default();
    let results = evaluate_all_methods(&workloads, &sim);

    let sizey = aggregate_method(&results[0].1);
    let baselines: Vec<_> = results
        .iter()
        .skip(1)
        .filter(|(m, _)| !matches!(m, MethodSpec::Preset))
        .map(|(m, r)| (m.name(), aggregate_method(r)))
        .collect();

    // Per-workflow reduction vs the *best* baseline for that workflow.
    let mut reductions = Vec::new();
    let mut rows = Vec::new();
    for wf in WORKFLOW_NAMES {
        let sizey_w = sizey.wastage_per_workflow.get(wf).copied().unwrap_or(0.0);
        let (best_name, best_w) = baselines
            .iter()
            .map(|(name, agg)| {
                (
                    *name,
                    agg.wastage_per_workflow
                        .get(wf)
                        .copied()
                        .unwrap_or(f64::INFINITY),
                )
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one baseline");
        let reduction = (1.0 - sizey_w / best_w) * 100.0;
        reductions.push(reduction);
        rows.push(vec![
            wf.to_string(),
            fmt(sizey_w, 2),
            format!("{best_name} ({})", fmt(best_w, 2)),
            fmt(reduction, 2),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Workflow", "Sizey GBh", "Best baseline GBh", "Reduction %"],
            &rows
        )
    );

    let median_reduction = median(&reductions);
    let best_total = baselines
        .iter()
        .map(|(_, agg)| agg.total_wastage_gbh)
        .fold(f64::INFINITY, f64::min);
    let overall_reduction = (1.0 - sizey.total_wastage_gbh / best_total) * 100.0;

    println!(
        "Median per-workflow reduction vs best baseline: {}% (paper: >= 24.68%).",
        fmt(median_reduction, 2)
    );
    println!(
        "Aggregate reduction vs best baseline: {}% (paper: ~60-65%).",
        fmt(overall_reduction, 2)
    );
}
