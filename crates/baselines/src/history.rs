//! Shared per-(task type, machine) history bookkeeping used by all baseline
//! methods.

use sizey_provenance::{TaskMachineKey, TaskOutcome, TaskRecord};
use std::collections::HashMap;

/// Observation history of successful executions, grouped per
/// (task type, machine) combination.
#[derive(Debug, Default, Clone)]
pub struct History {
    observations: HashMap<TaskMachineKey, Vec<Observation>>,
}

/// One successful task execution as seen by a baseline method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Input size in bytes.
    pub input_bytes: f64,
    /// Measured peak memory in bytes.
    pub peak_bytes: f64,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records a finished attempt. Only successful executions carry a true
    /// peak measurement and are stored; failed attempts are ignored here
    /// (failure handling is the responsibility of each method).
    pub fn observe(&mut self, record: &TaskRecord) {
        if record.outcome != TaskOutcome::Succeeded {
            return;
        }
        self.observations
            .entry(record.key())
            .or_default()
            .push(Observation {
                input_bytes: record.input_bytes,
                peak_bytes: record.peak_memory_bytes,
            });
    }

    /// All successful observations for a key, in arrival order.
    pub fn get(&self, key: &TaskMachineKey) -> &[Observation] {
        self.observations.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of successful observations for a key.
    pub fn count(&self, key: &TaskMachineKey) -> usize {
        self.get(key).len()
    }

    /// The peak memory values for a key.
    pub fn peaks(&self, key: &TaskMachineKey) -> Vec<f64> {
        self.get(key).iter().map(|o| o.peak_bytes).collect()
    }

    /// The maximum observed peak for a key, if any.
    pub fn max_peak(&self, key: &TaskMachineKey) -> Option<f64> {
        self.get(key)
            .iter()
            .map(|o| o.peak_bytes)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskTypeId};

    fn record(peak: f64, outcome: TaskOutcome) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: 0,
            input_bytes: 1e9,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 0,
            queue_delay_seconds: 0.0,
            outcome,
        }
    }

    #[test]
    fn only_successful_records_are_stored() {
        let mut h = History::new();
        h.observe(&record(1e9, TaskOutcome::Succeeded));
        h.observe(&record(9e9, TaskOutcome::FailedOutOfMemory));
        let key = TaskMachineKey::new("t", "m");
        assert_eq!(h.count(&key), 1);
        assert_eq!(h.peaks(&key), vec![1e9]);
        assert_eq!(h.max_peak(&key), Some(1e9));
    }

    #[test]
    fn unknown_key_is_empty() {
        let h = History::new();
        let key = TaskMachineKey::new("unknown", "m");
        assert!(h.get(&key).is_empty());
        assert_eq!(h.count(&key), 0);
        assert_eq!(h.max_peak(&key), None);
    }

    #[test]
    fn observations_preserve_order() {
        let mut h = History::new();
        for i in 1..=5 {
            h.observe(&record(i as f64 * 1e9, TaskOutcome::Succeeded));
        }
        let key = TaskMachineKey::new("t", "m");
        let peaks = h.peaks(&key);
        assert_eq!(peaks, vec![1e9, 2e9, 3e9, 4e9, 5e9]);
        assert_eq!(h.max_peak(&key), Some(5e9));
    }
}
