//! Simulation parameters.

use sizey_workflows::profiles::{NODE_COUNT, NODE_MEMORY_BYTES};

/// Parameters of an online replay, mirroring the knobs the paper's simulated
/// environment exposes (Section III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Fraction of a task's runtime after which an under-provisioned task
    /// fails. `1.0` means the failure is only detected at the very end of the
    /// execution (worst case, Fig. 8a); `0.5` means tasks fail halfway
    /// (Fig. 8b).
    pub time_to_failure: f64,
    /// Maximum number of attempts per task instance before the simulator
    /// gives up (safety net; with doubling every method reaches the node
    /// limit well before this).
    pub max_attempts: u32,
    /// Memory capacity of a single node in bytes; allocations are clamped to
    /// this value (assumption A3: strict limits, a task cannot be given more
    /// than a node has).
    pub node_memory_bytes: f64,
    /// Number of nodes in the cluster (used by the concurrency model).
    pub node_count: usize,
    /// Number of hardware threads per node available for concurrent tasks.
    pub slots_per_node: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            time_to_failure: 1.0,
            max_attempts: 12,
            node_memory_bytes: NODE_MEMORY_BYTES,
            node_count: NODE_COUNT,
            slots_per_node: 32,
        }
    }
}

impl SimulationConfig {
    /// Returns a copy with a different time-to-failure value.
    pub fn with_time_to_failure(mut self, ttf: f64) -> Self {
        self.time_to_failure = ttf;
        self
    }

    /// Total memory capacity of the cluster in bytes.
    pub fn cluster_memory_bytes(&self) -> f64 {
        self.node_memory_bytes * self.node_count as f64
    }

    /// Total task slots in the cluster.
    pub fn cluster_slots(&self) -> usize {
        self.node_count * self.slots_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_evaluation_cluster() {
        let c = SimulationConfig::default();
        assert_eq!(c.node_count, 8);
        assert_eq!(c.node_memory_bytes, 128e9);
        assert_eq!(c.slots_per_node, 32);
        assert_eq!(c.time_to_failure, 1.0);
        assert_eq!(c.cluster_memory_bytes(), 1024e9);
        assert_eq!(c.cluster_slots(), 256);
    }

    #[test]
    fn with_time_to_failure_overrides_only_ttf() {
        let c = SimulationConfig::default().with_time_to_failure(0.5);
        assert_eq!(c.time_to_failure, 0.5);
        assert_eq!(c.node_count, 8);
    }
}
