//! Lock-free snapshot publication: the left-right cell behind the async
//! service's predict path.
//!
//! [`SnapshotCell`] holds an immutable snapshot (`Arc<T>`) that readers can
//! take **without ever blocking on a writer**: [`SnapshotCell::load`] is
//! wait-free — two atomic counter updates, one atomic load and one `Arc`
//! clone, no locks, no allocation and no spinning, whatever a concurrent
//! writer is doing. Writers ([`SnapshotCell::store`]) publish a replacement
//! snapshot and then wait for the readers of the *old* one to depart; they
//! pay the entire cost of the exchange, which is exactly the asymmetry a
//! prediction service wants (predicts are the hot path, snapshot
//! installations happen once per observe micro-batch).
//!
//! ## How it works (the left-right pattern)
//!
//! The cell keeps **two slots**. At any moment one slot is *active* (readers
//! read it) and the other is *inactive* (the writer may overwrite it). A
//! writer first writes the new snapshot into the inactive slot, then flips
//! `active`, then waits until every reader that might still be looking at
//! the old slot has departed — tracked by two *reader cohort* counters that
//! the writer drains one after the other (flip `version`, wait for the old
//! cohort to reach zero). Once both cohorts observed after the flip are
//! drained, the old slot is quiescent and the *next* `store` may overwrite
//! it.
//!
//! The vendored-deps build has no `arc-swap` (and `AtomicPtr` + `Arc` alone
//! has the classic increment-after-free race: a reader that loads the
//! pointer but has not yet bumped the refcount can see the `Arc` freed under
//! it). Left-right closes that race with plain `AtomicUsize`s: the reader
//! *announces itself first* (cohort increment), and the writer never touches
//! a slot until announced readers are provably gone.
//!
//! All atomics use `SeqCst`: snapshot installation is once per micro-batch,
//! so the memory-ordering cost is irrelevant next to the correctness
//! argument staying simple (the safety proof below leans on the single total
//! order).

// The load path runs on every prediction; the marker opts this module into
// the no-panic-hot-path lint rule.
#![doc = "lint:hot-path"]

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::hint::spin_loop;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A two-slot left-right cell publishing `Arc<T>` snapshots: wait-free
/// lock-free reads, writer-pays-the-cost publication. See the [module
/// docs](self) for the protocol.
pub struct SnapshotCell<T> {
    /// The two snapshot slots. `slots[active]` is read-only shared;
    /// `slots[1 - active]` is writable by the (mutex-serialised) writer once
    /// drained.
    slots: [UnsafeCell<Arc<T>>; 2],
    /// Which slot readers should read (0 or 1).
    active: AtomicUsize,
    /// Which reader cohort arrivals register in (0 or 1). Flipped by the
    /// writer to separate "readers that may have seen the old slot" from
    /// "readers that provably see the new one".
    version: AtomicUsize,
    /// In-flight reader count per cohort.
    readers: [AtomicUsize; 2],
    /// Serialises writers; readers never touch it.
    writer: Mutex<()>,
}

// SAFETY: the left-right protocol guarantees exclusive access for slot
// writes — `store` only writes a slot after flipping `active` away from it
// and draining both reader cohorts (every announced reader departed, every
// later reader loads the new `active`), and writers are serialised by the
// `writer` mutex. Readers only ever take shared `&Arc<T>` references to the
// active slot. So the `UnsafeCell`s are never aliased mutably, and sharing
// the cell across threads is sound whenever `Arc<T>` itself is sendable and
// shareable (`T: Send + Sync`).
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
// SAFETY: see the Send impl directly above — the same protocol argument
// covers shared references from multiple threads.
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// A cell whose both slots start at `initial` (readers see it until the
    /// first [`store`](SnapshotCell::store)).
    pub fn new(initial: Arc<T>) -> Self {
        SnapshotCell {
            slots: [
                UnsafeCell::new(Arc::clone(&initial)),
                UnsafeCell::new(initial),
            ],
            active: AtomicUsize::new(0),
            version: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    /// Takes the current snapshot. Wait-free: no locks, no retries, no
    /// allocation (an `Arc` clone is one atomic increment) — and never
    /// blocks on a concurrent [`store`](SnapshotCell::store), which is the
    /// lock-freedom property the serving layer's predict path is built on.
    pub fn load(&self) -> Arc<T> {
        // Announce this reader in the current cohort *before* choosing a
        // slot: the writer's drain waits for announced readers, and any
        // reader announcing after the drain's check provably loads the new
        // `active` below (SeqCst total order), i.e. never the slot the
        // writer is about to overwrite.
        let cohort = self.version.load(Ordering::SeqCst) & 1;
        // lint:allow(no-panic-hot-path): the index is masked to 0/1 and the
        // arrays have two elements — in bounds by construction.
        self.readers[cohort].fetch_add(1, Ordering::SeqCst);
        let side = self.active.load(Ordering::SeqCst) & 1;
        // SAFETY: `slots[side]` is the active slot; per the protocol (see
        // the Send/Sync impls) no writer mutates a slot while readers
        // announced in a live cohort may be reading it, so a shared
        // reference for the duration of this announced read is sound.
        // lint:allow(no-panic-hot-path): index masked to 0/1, arrays of two.
        let snapshot = unsafe { Arc::clone(&*self.slots[side].get()) };
        // Depart from the cohort we announced in (the writer may have
        // flipped `version` meanwhile; departing the *announced* cohort is
        // what lets its drain complete).
        // lint:allow(no-panic-hot-path): index masked to 0/1, arrays of two.
        self.readers[cohort].fetch_sub(1, Ordering::SeqCst);
        snapshot
    }

    /// Publishes `snapshot` as the new active value and waits for all
    /// readers of the previous one to depart. Readers are never blocked; the
    /// writer spins (publication is off the predict path — once per observe
    /// micro-batch — so a brief writer spin is the right trade).
    pub fn store(&self, snapshot: Arc<T>) {
        let _serialised = self.writer.lock();
        let inactive = 1 - (self.active.load(Ordering::SeqCst) & 1);
        // SAFETY: `inactive` was drained by the previous `store`'s cohort
        // protocol (or never active since construction), writers are
        // serialised by the mutex held above, and readers announced from
        // here on load the *current* `active`, which still points away from
        // `inactive`. Exclusive access, so the write is sound; the old Arc
        // dropped here has no outside readers for the same reason.
        unsafe {
            // lint:allow(no-panic-hot-path): index masked to 0/1, arrays of two.
            *self.slots[inactive].get() = snapshot;
        }
        // From this point on, arriving readers pick up the new snapshot.
        self.active.store(inactive, Ordering::SeqCst);
        // Drain both cohorts: readers announced before the flip are in one
        // of them; once each has hit zero after the flip, every such reader
        // has departed and the now-inactive slot is quiescent for the next
        // store. Readers arriving during the drain load the new `active`
        // (SeqCst: their cohort increment follows our check, so their
        // `active` load follows the flip) and are therefore harmless to the
        // slot the next store will overwrite.
        let cohort = self.version.load(Ordering::SeqCst) & 1;
        let next = 1 - cohort;
        // lint:allow(no-panic-hot-path): index masked to 0/1, arrays of two.
        while self.readers[next].load(Ordering::SeqCst) != 0 {
            spin_loop();
        }
        self.version.store(next, Ordering::SeqCst);
        // lint:allow(no-panic-hot-path): index masked to 0/1, arrays of two.
        while self.readers[cohort].load(Ordering::SeqCst) != 0 {
            spin_loop();
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapshotCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCell")
            .field("value", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn load_returns_the_initial_and_then_the_stored_value() {
        let cell = SnapshotCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        cell.store(Arc::new(4));
        assert_eq!(*cell.load(), 4);
    }

    #[test]
    fn old_snapshots_stay_alive_while_held() {
        let cell = SnapshotCell::new(Arc::new(String::from("old")));
        let held = cell.load();
        cell.store(Arc::new(String::from("mid")));
        cell.store(Arc::new(String::from("new")));
        // The reader's Arc keeps the old value alive past two publishes.
        assert_eq!(*held, "old");
        assert_eq!(*cell.load(), "new");
    }

    #[test]
    fn concurrent_loads_and_stores_never_tear() {
        // Each snapshot is a (n, 2*n) pair; a torn read would produce an
        // inconsistent pair. Hammer loads from several threads while the
        // main thread publishes continuously.
        let cell = Arc::new(SnapshotCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.load();
                        assert_eq!(snap.1, snap.0 * 2, "torn snapshot");
                        assert!(snap.0 >= last, "snapshots went backwards");
                        last = snap.0;
                    }
                })
            })
            .collect();
        for n in 1..=5000u64 {
            cell.store(Arc::new((n, 2 * n)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.load().0, 5000);
    }

    /// The lock-freedom claim itself: a reader completes while a writer is
    /// mid-publish. The writer is parked inside `store` draining a cohort
    /// that a stuck "reader" (simulated by a raw cohort increment) never
    /// leaves; real loads must still complete and see the *new* value.
    #[test]
    fn loads_complete_while_a_writer_is_blocked_draining() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(1u64)));
        // Simulate a stalled in-flight reader: announced in the current
        // cohort, never departing (as if preempted mid-load).
        let cohort = cell.version.load(Ordering::SeqCst) & 1;
        cell.readers[cohort].fetch_add(1, Ordering::SeqCst);
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || cell.store(Arc::new(2)))
        };
        // The writer cannot finish: its drain waits on the stuck cohort.
        thread::sleep(Duration::from_millis(50));
        assert!(!writer.is_finished(), "writer should be stuck draining");
        // Readers are not blocked by the stuck writer — and they already
        // observe the new snapshot (publication precedes the drain).
        for _ in 0..100 {
            assert_eq!(*cell.load(), 2);
        }
        // Release the stuck reader; the writer completes.
        cell.readers[cohort].fetch_sub(1, Ordering::SeqCst);
        writer.join().unwrap();
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn stores_from_many_threads_serialise_cleanly() {
        let cell = Arc::new(SnapshotCell::new(Arc::new(0u64)));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for i in 0..500u64 {
                        cell.store(Arc::new(w * 1000 + i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // One of the writers' final values won.
        let last = *cell.load();
        assert!((0..4).any(|w| last == w * 1000 + 499), "last = {last}");
    }
}
