//! Property-based tests for the ML substrate invariants.

use proptest::prelude::*;
use sizey_ml::dataset::Dataset;
use sizey_ml::forest::{ForestConfig, RandomForestRegression};
use sizey_ml::knn::KnnRegression;
use sizey_ml::linear::LinearRegression;
use sizey_ml::matrix::{dot, euclidean_distance, Matrix};
use sizey_ml::metrics::{bounded_relative_error, median, percentile, std_dev};
use sizey_ml::model::Regressor;
use sizey_ml::scaler::{Scaler, ScalerKind, TargetScaler};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6f64..1.0e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_is_commutative(a in finite_vec(1..20), b in finite_vec(1..20)) {
        let n = a.len().min(b.len());
        let x = &a[..n];
        let y = &b[..n];
        let d1 = dot(x, y);
        let d2 = dot(y, x);
        prop_assert!((d1 - d2).abs() <= 1e-6 * (1.0 + d1.abs()));
    }

    #[test]
    fn euclidean_distance_is_symmetric_and_nonnegative(
        a in finite_vec(1..20), b in finite_vec(1..20)
    ) {
        let n = a.len().min(b.len());
        let x = &a[..n];
        let y = &b[..n];
        let d = euclidean_distance(x, y);
        prop_assert!(d >= 0.0);
        prop_assert!((d - euclidean_distance(y, x)).abs() < 1e-9);
    }

    #[test]
    fn matrix_transpose_is_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i as u64 + seed) % 97) as f64 - 48.0)
            .collect();
        let m = Matrix::from_vec(rows, cols, data);
        let tt = m.transpose().transpose();
        prop_assert_eq!(m, tt);
    }

    #[test]
    fn solve_round_trips_spd_systems(n in 1usize..6, seed in 0u64..500) {
        // Build a symmetric positive-definite matrix A = B^T B + I.
        let data: Vec<f64> = (0..n * n)
            .map(|i| (((i as u64 * 31 + seed * 17) % 13) as f64 - 6.0) / 3.0)
            .collect();
        let b = Matrix::from_vec(n, n, data);
        let mut a = b.transpose().matmul(&b).unwrap();
        a.add_diagonal(1.0);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
        let rhs = a.matvec(&x_true).unwrap();
        let x = a.solve(&rhs).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            prop_assert!((xi - ti).abs() < 1e-6);
        }
    }

    #[test]
    fn percentile_is_monotone_in_p(values in finite_vec(1..50), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-9);
    }

    #[test]
    fn median_is_within_min_max(values in finite_vec(1..50)) {
        let m = median(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn std_dev_is_nonnegative(values in finite_vec(0..50)) {
        prop_assert!(std_dev(&values) >= 0.0);
    }

    #[test]
    fn bounded_relative_error_stays_in_cap(pred in -1e9f64..1e9, actual in -1e9f64..1e9) {
        let e = bounded_relative_error(pred, actual, 1.0);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn minmax_scaler_output_is_in_unit_interval(rows in prop::collection::vec(finite_vec(3..4), 2..30)) {
        let mut s = Scaler::new(ScalerKind::MinMax);
        let t = s.fit_transform(&rows);
        for row in &t {
            for &v in row {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn target_scaler_round_trip(values in finite_vec(1..40), probe in -1e6f64..1e6) {
        let mut s = TargetScaler::new();
        s.fit(&values);
        let back = s.inverse(s.transform(probe));
        prop_assert!((back - probe).abs() < 1e-6 * (1.0 + probe.abs()));
    }

    #[test]
    fn knn_prediction_bounded_by_targets(
        xs in prop::collection::vec(0.0f64..1000.0, 3..40),
        query in 0.0f64..2000.0
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 10.0).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = KnnRegression::with_defaults();
        m.fit(&data).unwrap();
        let p = m.predict(&[query]).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-6 && p <= hi + 1e-6);
    }

    #[test]
    fn forest_prediction_bounded_by_targets(
        seed in 0u64..100,
        n in 8usize..40,
        query in 0.0f64..500.0
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 + x * x * 0.5).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut f = RandomForestRegression::new(ForestConfig {
            n_trees: 8,
            seed,
            ..ForestConfig::default()
        });
        f.fit(&data).unwrap();
        let p = f.predict(&[query]).unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-6 && p <= hi + 1e-6);
    }

    #[test]
    fn linear_regression_interpolates_noiseless_lines(
        slope in -100.0f64..100.0,
        intercept in -1000.0f64..1000.0,
        query in 0.0f64..100.0
    ) {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let p = m.predict(&[query]).unwrap();
        let truth = slope * query + intercept;
        prop_assert!((p - truth).abs() < 1e-3 * (1.0 + truth.abs()),
            "pred {} truth {}", p, truth);
    }
}
