//! Property tests for the concurrent serving layer and the offset
//! strategies' empty-history contract.
//!
//! The sharded [`SharedSizey`] service must be a *drop-in* replacement for
//! the serial [`SizeyPredictor`]: driven single-threaded through the same
//! replay, every allocation decision must be bit-identical. This holds
//! because all of Sizey's learned state is keyed by (task type, machine)
//! and the service routes every predict and observe of a key to the same
//! shard — the property test is the proof that no hidden cross-key state
//! was missed.

use proptest::prelude::*;
use sizey_core::OffsetStrategy;
use sizey_core::{SharedSizey, SizeyConfig, SizeyPredictor};
use sizey_ml::metrics::{median, std_dev};
use sizey_sim::{replay_workflow, SimulationConfig};
use sizey_workflows::{generate_workflow, workflow_by_name, GeneratorConfig, WORKFLOW_NAMES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sharded concurrent predictor produces bit-identical decisions to
    /// the serial `SizeyPredictor` when driven single-threaded through the
    /// same replay, for any workload, seed and shard count.
    #[test]
    fn sharded_service_is_bit_identical_to_serial_sizey(
        seed in 0u64..3000,
        wf_idx in 0usize..6,
        shards in 1usize..9,
    ) {
        let name = WORKFLOW_NAMES[wf_idx];
        let spec = workflow_by_name(name).expect("known workflow");
        let instances = generate_workflow(
            &spec,
            &GeneratorConfig {
                scale: 0.01,
                seed,
                min_instances: 6,
                interleave: true,
                drift: None,
            },
        );
        let sim = SimulationConfig::default();

        let mut serial = SizeyPredictor::with_defaults();
        let serial_report = replay_workflow(name, &instances, &mut serial, &sim);

        let mut shared = SharedSizey::sizey(SizeyConfig::default(), shards);
        let shared_report = replay_workflow(name, &instances, &mut shared, &sim);

        prop_assert_eq!(serial_report.events.len(), shared_report.events.len());
        for (a, b) in serial_report.events.iter().zip(&shared_report.events) {
            prop_assert_eq!(a.sequence, b.sequence);
            prop_assert_eq!(a.attempt, b.attempt);
            // Bitwise equality, not tolerance: the shard must run the exact
            // same arithmetic on the exact same state.
            prop_assert_eq!(a.allocated_bytes, b.allocated_bytes);
            prop_assert_eq!(a.raw_estimate_bytes, b.raw_estimate_bytes);
            prop_assert_eq!(&a.selected_model, &b.selected_model);
            prop_assert_eq!(a.success, b.success);
            prop_assert_eq!(a.wastage_gbh, b.wastage_gbh);
        }
        prop_assert_eq!(
            serial_report.unfinished_instances,
            shared_report.unfinished_instances
        );
    }

    /// Histories with no under-predictions must keep yielding a 0.0 offset
    /// for the under-prediction strategies: they filter the error list down
    /// to an empty slice and silently rely on `std_dev`/`median` returning
    /// 0 for it. Lock that contract in for arbitrary over-predicting
    /// histories.
    #[test]
    fn overpredicting_histories_yield_exactly_zero_underprediction_offsets(
        margins in proptest::collection::vec(0.0f64..5e9, 1..40),
    ) {
        // actual = 10 GB, prediction over-shoots by `margin` ≥ 0: no entry
        // is an under-prediction.
        let history: Vec<(f64, f64)> = margins
            .iter()
            .map(|&margin| (10e9 + margin, 10e9))
            .collect();
        prop_assert_eq!(
            OffsetStrategy::StdDevUnderpredictions.offset(&history),
            0.0
        );
        prop_assert_eq!(
            OffsetStrategy::MedianErrorUnderpredictions.offset(&history),
            0.0
        );
    }
}

/// The empty-slice behavior the offset strategies depend on, asserted at
/// the metrics level so a future "more correct" NaN-returning refactor
/// cannot slip through.
#[test]
fn empty_slice_metrics_are_zero_not_nan() {
    assert_eq!(std_dev(&[]), 0.0);
    assert_eq!(median(&[]), 0.0);
    for strategy in OffsetStrategy::ALL {
        assert_eq!(strategy.offset(&[]), 0.0, "{strategy}");
    }
}
