//! Predictor snapshot/restore lifecycle.
//!
//! Every sizing method in the workspace learns exclusively from the stream of
//! [`TaskRecord`]s fed through [`MemoryPredictor::observe`] — the learned
//! state of a predictor is a pure, deterministic function of its
//! configuration plus that ordered stream (stochastic pool members are seeded
//! from the configuration). A snapshot therefore does not serialise model
//! weights; it is an **event-sourced checkpoint**: the ordered observation
//! journal, plus the handful of predict-path diagnostic counters that
//! replaying the journal cannot reproduce. Restoring replays the journal
//! through a freshly built predictor, which provably reconstructs the exact
//! learned state — restored predictors are *bit-identical* to uninterrupted
//! ones (the workspace's property tests assert this across workloads, seeds
//! and mid-workflow cut points).
//!
//! The trade-offs of this design are deliberate:
//!
//! * **Fidelity** — replay goes through the only write path that exists, so
//!   a snapshot can never drift from what the predictor would actually have
//!   learned. There is no second serialisation of model internals to keep in
//!   sync with four model classes.
//! * **Restore cost** — restoring re-trains the models, so it costs one
//!   online-learning pass over the journal. Checkpoints are taken on the
//!   read path ([`CheckpointPredictor::snapshot`] is `&self`) and are cheap;
//!   restores are the rare warm-start/recovery operation.
//! * **Wall-clock telemetry** (e.g. Sizey's per-step training times) is
//!   re-measured during the restore replay rather than carried over — it is
//!   wall-clock data and would be stale on the restoring host anyway.
//!
//! [`PredictorState`] round-trips through a plain-text format (the journal
//! reuses the provenance TSV trace codec) so checkpoints can be written to a
//! checkpoint directory, diffed, and shipped between runs. `f64` values are
//! printed with Rust's shortest-round-trip formatting, so the text form is
//! lossless.

use crate::predictor::{MemoryPredictor, PresetPredictor};
use serde::{Deserialize, Serialize};
use sizey_provenance::{
    from_trace_string, to_trace_string, trace_reader_from_file, trace_writer_to_file, TaskRecord,
    TraceError,
};
use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Magic first line of the serialised [`PredictorState`] format.
const STATE_HEADER: &str = "sizey-predictor-state v1";

/// A serialisable snapshot of one predictor's learned state.
///
/// See the [module docs](self) for why this is an observation journal rather
/// than serialised model weights.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PredictorState {
    /// Every record the predictor has observed, in observation order — the
    /// event source the learned state is rebuilt from. Records are
    /// reference-counted and **shared** with the predictor's own store:
    /// snapshotting bumps `Arc` counts instead of deep-cloning the journal
    /// a second time.
    pub journal: Vec<Arc<TaskRecord>>,
    /// Predict-path diagnostic counters that replaying the journal cannot
    /// reproduce (e.g. Sizey's offset-strategy selection tallies), keyed by a
    /// method-defined name. Sorted by name for deterministic serialisation.
    pub counters: Vec<(String, u64)>,
}

impl PredictorState {
    /// An empty state (what a stateless or freshly built predictor
    /// snapshots to).
    pub fn empty() -> Self {
        PredictorState::default()
    }

    /// Serialises the state into the plain-text checkpoint format.
    pub fn to_state_string(&self) -> String {
        let mut out = String::new();
        out.push_str(STATE_HEADER);
        out.push('\n');
        out.push_str(&format!("counters {}\n", self.counters.len()));
        for (name, value) in &self.counters {
            out.push_str(&format!("{name}\t{value}\n"));
        }
        out.push_str("journal\n");
        out.push_str(&to_trace_string(&self.journal));
        out
    }

    /// Parses a state from the plain-text checkpoint format.
    pub fn from_state_string(content: &str) -> Result<Self, StateError> {
        let mut lines = content.lines();
        match lines.next() {
            Some(first) if first.trim() == STATE_HEADER => {}
            other => {
                return Err(StateError::Parse {
                    line: 1,
                    message: format!("expected {STATE_HEADER:?}, found {other:?}"),
                })
            }
        }
        let n_counters: usize = match lines.next() {
            Some(decl) => {
                let rest = decl.strip_prefix("counters ").ok_or(StateError::Parse {
                    line: 2,
                    message: format!("expected \"counters <n>\", found {decl:?}"),
                })?;
                rest.trim().parse().map_err(|e| StateError::Parse {
                    line: 2,
                    message: format!("invalid counter count {rest:?}: {e}"),
                })?
            }
            None => {
                return Err(StateError::Parse {
                    line: 2,
                    message: "missing \"counters <n>\" line".to_string(),
                })
            }
        };
        let mut counters = Vec::with_capacity(n_counters);
        for i in 0..n_counters {
            let line_no = 3 + i;
            let line = lines.next().ok_or(StateError::Parse {
                line: line_no,
                message: "unexpected end of input inside counters".to_string(),
            })?;
            let (name, value) = line.split_once('\t').ok_or(StateError::Parse {
                line: line_no,
                message: format!("expected \"name\\tvalue\", found {line:?}"),
            })?;
            let value: u64 = value.trim().parse().map_err(|e| StateError::Parse {
                line: line_no,
                message: format!("invalid counter value {value:?}: {e}"),
            })?;
            counters.push((name.to_string(), value));
        }
        let journal_line_no = 3 + n_counters;
        match lines.next() {
            Some(marker) if marker.trim() == "journal" => {}
            other => {
                return Err(StateError::Parse {
                    line: journal_line_no,
                    message: format!("expected \"journal\" marker, found {other:?}"),
                })
            }
        }
        let remainder: Vec<&str> = lines.collect();
        let journal = from_trace_string(&remainder.join("\n"))?
            .into_iter()
            .map(Arc::new)
            .collect();
        Ok(PredictorState { journal, counters })
    }

    /// Writes the state to a checkpoint file.
    pub fn write_state_file(&self, path: impl AsRef<Path>) -> Result<(), StateError> {
        fs::write(path, self.to_state_string()).map_err(StateError::Io)
    }

    /// Reads a state from a checkpoint file.
    pub fn read_state_file(path: impl AsRef<Path>) -> Result<Self, StateError> {
        let content = fs::read_to_string(path).map_err(StateError::Io)?;
        Self::from_state_string(&content)
    }
}

/// Errors produced by the snapshot/restore lifecycle.
#[derive(Debug)]
pub enum StateError {
    /// Underlying I/O failure while reading or writing a checkpoint file.
    Io(io::Error),
    /// A malformed checkpoint file.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The journal section of a checkpoint failed to parse.
    Trace(TraceError),
    /// [`CheckpointPredictor::restore`] was called on a predictor that has
    /// already observed records; restore requires a freshly built instance
    /// (otherwise the replayed journal would be interleaved with existing
    /// state and the bit-identity guarantee would be silently lost).
    NotFresh {
        /// Number of records the target predictor had already observed.
        observed: usize,
    },
    /// A counter in the state is not recognised by the predictor being
    /// restored (usually a state snapshot from a different method).
    UnknownCounter {
        /// The offending counter name.
        name: String,
    },
    /// A service checkpoint declares zero shards — structurally valid on
    /// disk, but a sharded service cannot be rebuilt from it.
    EmptyCheckpoint,
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            StateError::Parse { line, message } => {
                write!(f, "checkpoint parse error at line {line}: {message}")
            }
            StateError::Trace(e) => write!(f, "checkpoint journal error: {e}"),
            StateError::NotFresh { observed } => write!(
                f,
                "restore requires a freshly built predictor (target has already \
                 observed {observed} records)"
            ),
            StateError::UnknownCounter { name } => {
                write!(
                    f,
                    "state contains a counter unknown to this method: {name:?}"
                )
            }
            StateError::EmptyCheckpoint => {
                write!(f, "service checkpoint has zero shards; nothing to restore")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl From<TraceError> for StateError {
    fn from(e: TraceError) -> Self {
        StateError::Trace(e)
    }
}

/// File name of the base checkpoint inside a compacted-checkpoint directory.
const COMPACTED_BASE_FILE: &str = "base.state";
/// File name of the appendable journal tail (provenance TSV trace).
const COMPACTED_TAIL_FILE: &str = "tail.trace";
/// File name of the sealed final counters (journal-less state file).
const COMPACTED_COUNTERS_FILE: &str = "counters.state";

/// A **compacted** predictor checkpoint: an earlier full checkpoint plus the
/// journal tail observed since, plus the final predict-path counters.
///
/// A long-running service that re-serialised its entire observation journal
/// on every checkpoint would pay `O(n)` I/O per checkpoint and `O(n²)` over
/// a run. Compaction makes checkpointing incremental: take a full
/// [`PredictorState`] once (the *base*), then only **append** each newly
/// observed record to the tail — on disk the tail is a provenance TSV trace
/// written with the streaming
/// [`TraceWriter`](sizey_provenance::trace_io::TraceWriter), so a checkpoint
/// step costs one record of I/O, not the whole history.
///
/// [`resolve`](CompactedCheckpoint::resolve) reassembles the equivalent full
/// [`PredictorState`] (base journal ++ tail, sealed counters); restoring
/// from it is **bit-identical** to restoring from a full checkpoint taken at
/// the same point — the property suite asserts this for every predictor
/// class in the registry, across cut points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompactedCheckpoint {
    /// The full checkpoint this compaction starts from.
    pub base: PredictorState,
    /// Records observed after `base` was taken, in observation order.
    pub tail: Vec<Arc<TaskRecord>>,
    /// Predict-path counters at seal time. Observing records never touches
    /// the predict-path tallies, so the tail alone cannot reproduce them;
    /// they are carried explicitly (initialised from `base`, updated by
    /// [`seal_counters`](CompactedCheckpoint::seal_counters)).
    pub counters: Vec<(String, u64)>,
}

impl CompactedCheckpoint {
    /// Starts a compacted checkpoint from a full base checkpoint.
    pub fn new(base: PredictorState) -> Self {
        let counters = base.counters.clone();
        CompactedCheckpoint {
            base,
            tail: Vec::new(),
            counters,
        }
    }

    /// Appends one newly observed record to the journal tail. Must be called
    /// with exactly the records fed to [`MemoryPredictor::observe`], in the
    /// same order.
    pub fn append(&mut self, record: Arc<TaskRecord>) {
        self.tail.push(record);
    }

    /// Replaces the sealed counters with the live predictor's current ones
    /// (from [`CheckpointPredictor::snapshot`]).
    pub fn seal_counters(&mut self, counters: Vec<(String, u64)>) {
        self.counters = counters;
    }

    /// Reassembles the equivalent full [`PredictorState`]: base journal
    /// followed by the tail, under the sealed counters.
    pub fn resolve(&self) -> PredictorState {
        let mut journal = Vec::with_capacity(self.base.journal.len() + self.tail.len());
        journal.extend(self.base.journal.iter().cloned());
        journal.extend(self.tail.iter().cloned());
        PredictorState {
            journal,
            counters: self.counters.clone(),
        }
    }

    /// Restores the compacted state onto a freshly built predictor —
    /// equivalent to `predictor.restore(&self.resolve())`.
    pub fn restore_into(&self, predictor: &mut dyn CheckpointPredictor) -> Result<(), StateError> {
        predictor.restore(&self.resolve())
    }

    /// Writes the checkpoint into `dir` as three files: the base state, the
    /// tail trace (streamed record by record) and the sealed counters.
    pub fn write_dir(&self, dir: impl AsRef<Path>) -> Result<(), StateError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(StateError::Io)?;
        self.base.write_state_file(dir.join(COMPACTED_BASE_FILE))?;
        let mut writer =
            trace_writer_to_file(dir.join(COMPACTED_TAIL_FILE)).map_err(StateError::Trace)?;
        for record in &self.tail {
            writer.write_record(record).map_err(StateError::Trace)?;
        }
        writer.finish().map_err(StateError::Trace)?;
        let sealed = PredictorState {
            journal: Vec::new(),
            counters: self.counters.clone(),
        };
        sealed.write_state_file(dir.join(COMPACTED_COUNTERS_FILE))
    }

    /// Reads a checkpoint previously written with
    /// [`write_dir`](CompactedCheckpoint::write_dir), streaming the tail
    /// trace record by record.
    pub fn read_dir(dir: impl AsRef<Path>) -> Result<Self, StateError> {
        let dir = dir.as_ref();
        let base = PredictorState::read_state_file(dir.join(COMPACTED_BASE_FILE))?;
        let mut tail = Vec::new();
        for record in
            trace_reader_from_file(dir.join(COMPACTED_TAIL_FILE)).map_err(StateError::Trace)?
        {
            tail.push(Arc::new(record.map_err(StateError::Trace)?));
        }
        let sealed = PredictorState::read_state_file(dir.join(COMPACTED_COUNTERS_FILE))?;
        Ok(CompactedCheckpoint {
            base,
            tail,
            counters: sealed.counters,
        })
    }
}

/// A predictor whose learned state can be checkpointed and restored.
///
/// `snapshot` runs on the read path (`&self`) and must capture everything a
/// fresh instance needs to become bit-identical; `restore` must be called on
/// a **freshly built** instance with the same configuration (it replays the
/// journal through [`MemoryPredictor::observe`] and fails with
/// [`StateError::NotFresh`] otherwise).
pub trait CheckpointPredictor: MemoryPredictor {
    /// Captures a serialisable snapshot of all learned state.
    fn snapshot(&self) -> PredictorState;

    /// Rebuilds the snapshotted state on this freshly built instance.
    fn restore(&mut self, state: &PredictorState) -> Result<(), StateError>;
}

impl CheckpointPredictor for PresetPredictor {
    fn snapshot(&self) -> PredictorState {
        // The preset baseline is stateless: nothing to journal.
        PredictorState::empty()
    }

    fn restore(&mut self, state: &PredictorState) -> Result<(), StateError> {
        if let Some((name, _)) = state.counters.first() {
            return Err(StateError::UnknownCounter { name: name.clone() });
        }
        // The journal (if any) replays as no-ops; presets learn nothing.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskOutcome, TaskTypeId};

    fn record(seq: u64, outcome: TaskOutcome) -> TaskRecord {
        TaskRecord {
            workflow: "wf".to_string(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: 1.5e9 + seq as f64 * 0.1,
            peak_memory_bytes: 3.00000000001e9,
            allocated_memory_bytes: 4e9,
            runtime_seconds: 61.25,
            concurrent_tasks: 2,
            queue_delay_seconds: 0.5,
            outcome,
        }
    }

    #[test]
    fn state_round_trips_through_text() {
        let state = PredictorState {
            journal: vec![
                Arc::new(record(0, TaskOutcome::Succeeded)),
                Arc::new(record(1, TaskOutcome::FailedOutOfMemory)),
            ],
            counters: vec![("a.counter".to_string(), 7), ("b".to_string(), 0)],
        };
        let text = state.to_state_string();
        let parsed = PredictorState::from_state_string(&text).unwrap();
        assert_eq!(parsed, state);
    }

    #[test]
    fn empty_state_round_trips() {
        let state = PredictorState::empty();
        let parsed = PredictorState::from_state_string(&state.to_state_string()).unwrap();
        assert_eq!(parsed, state);
        assert!(parsed.journal.is_empty());
        assert!(parsed.counters.is_empty());
    }

    #[test]
    fn malformed_states_report_line_numbers() {
        let missing_header = PredictorState::from_state_string("nope\n");
        assert!(matches!(
            missing_header,
            Err(StateError::Parse { line: 1, .. })
        ));
        let bad_count = PredictorState::from_state_string("sizey-predictor-state v1\ncounters x\n");
        assert!(matches!(bad_count, Err(StateError::Parse { line: 2, .. })));
        let truncated =
            PredictorState::from_state_string("sizey-predictor-state v1\ncounters 2\na\t1\n");
        assert!(matches!(truncated, Err(StateError::Parse { line: 4, .. })));
        let no_journal =
            PredictorState::from_state_string("sizey-predictor-state v1\ncounters 0\n");
        assert!(matches!(no_journal, Err(StateError::Parse { line: 3, .. })));
    }

    #[test]
    fn preset_predictor_snapshots_empty_and_restores() {
        let preset = PresetPredictor;
        assert_eq!(preset.snapshot(), PredictorState::empty());
        let mut fresh = PresetPredictor;
        fresh.restore(&preset.snapshot()).unwrap();
        let foreign = PredictorState {
            journal: Vec::new(),
            counters: vec![("offset-selected.std-dev".to_string(), 3)],
        };
        assert!(matches!(
            fresh.restore(&foreign),
            Err(StateError::UnknownCounter { .. })
        ));
    }

    #[test]
    fn compacted_checkpoint_resolves_to_base_plus_tail() {
        let base = PredictorState {
            journal: vec![Arc::new(record(0, TaskOutcome::Succeeded))],
            counters: vec![("c".to_string(), 1)],
        };
        let mut compacted = CompactedCheckpoint::new(base.clone());
        assert_eq!(compacted.resolve(), base);
        compacted.append(Arc::new(record(1, TaskOutcome::FailedOutOfMemory)));
        compacted.append(Arc::new(record(2, TaskOutcome::Succeeded)));
        compacted.seal_counters(vec![("c".to_string(), 5)]);
        let resolved = compacted.resolve();
        assert_eq!(resolved.journal.len(), 3);
        assert_eq!(resolved.journal[0], base.journal[0]);
        assert_eq!(resolved.journal[2].sequence, 2);
        assert_eq!(resolved.counters, vec![("c".to_string(), 5)]);
    }

    #[test]
    fn compacted_checkpoint_round_trips_through_directory() {
        let base = PredictorState {
            journal: vec![Arc::new(record(0, TaskOutcome::Succeeded))],
            counters: vec![("c".to_string(), 1)],
        };
        let mut compacted = CompactedCheckpoint::new(base);
        compacted.append(Arc::new(record(1, TaskOutcome::FailedOutOfMemory)));
        compacted.seal_counters(vec![("c".to_string(), 2), ("d".to_string(), 0)]);
        let dir = std::env::temp_dir().join("sizey-compacted-checkpoint-test");
        compacted.write_dir(&dir).unwrap();
        let read = CompactedCheckpoint::read_dir(&dir).unwrap();
        assert_eq!(read, compacted);
        assert_eq!(read.resolve(), compacted.resolve());
    }

    #[test]
    fn state_files_round_trip() {
        let state = PredictorState {
            journal: vec![Arc::new(record(3, TaskOutcome::Succeeded))],
            counters: vec![("c".to_string(), 1)],
        };
        let dir = std::env::temp_dir().join("sizey-lifecycle-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.txt");
        state.write_state_file(&path).unwrap();
        assert_eq!(PredictorState::read_state_file(&path).unwrap(), state);
    }
}
