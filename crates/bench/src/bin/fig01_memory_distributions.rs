//! Fig. 1 — distribution of peak memory consumption of four task types
//! (lcextrap, Preprocessing, mpileup, genomecov), each executed repeatedly
//! with varying input sizes.
//!
//! Run with `cargo run -p sizey-bench --release --bin fig01_memory_distributions`.

use sizey_bench::{banner, fmt, render_table, HarnessSettings};
use sizey_provenance::TaskTypeId;
use sizey_workflows::{
    generate_workflow, peak_memory_by_task_type, workflow_by_name, GeneratorConfig,
};

/// The four task types shown in the paper's Fig. 1 and the workflows they
/// belong to in this reproduction.
const FIG1_TASKS: [(&str, &str); 4] = [
    ("chipseq", "lcextrap"),
    ("iwd", "Preprocessing"),
    ("eager", "mpileup"),
    ("chipseq", "genomecov"),
];

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 1: peak-memory distributions of four task types",
        &settings,
    );

    let mut rows = Vec::new();
    for (workflow, task) in FIG1_TASKS {
        let spec = workflow_by_name(workflow).expect("known workflow");
        // Use the full instance volume for distribution fidelity; Fig. 1 does
        // not involve any learning, so this is cheap.
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(1.0, settings.seed));
        let by_type = peak_memory_by_task_type(&instances);
        let dist = by_type
            .get(&TaskTypeId::new(task))
            .expect("task type present in generated workload");
        rows.push(vec![
            task.to_string(),
            dist.count.to_string(),
            fmt(dist.min / 1e6, 0),
            fmt(dist.q1 / 1e6, 0),
            fmt(dist.median / 1e6, 0),
            fmt(dist.q3 / 1e6, 0),
            fmt(dist.max / 1e6, 0),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "Task",
                "n",
                "min MB",
                "q1 MB",
                "median MB",
                "q3 MB",
                "max MB"
            ],
            &rows
        )
    );
    println!("Paper reference (Fig. 1): lcextrap ~200-1000 MB (median ~550 MB),");
    println!("Preprocessing ~2000-4500 MB, mpileup ~0-400 MB, genomecov ~4000-7000 MB.");
}
