//! Concurrent sharded prediction service.
//!
//! The split predictor API (`predict` on `&self`, `observe` on `&mut self`)
//! makes a single predictor safe to read from many threads, but one global
//! lock would serialize every observe against every predict. This module
//! adds the serving layer for heavy multi-tenant traffic:
//!
//! * **Sharding** — the key space is partitioned across `shards` independent
//!   predictor instances by a deterministic hash of
//!   [`TaskMachineKey`](sizey_provenance::TaskMachineKey) (task type ×
//!   machine). All learned state in Sizey
//!   and the baselines is keyed per (task type, machine), so routing every
//!   predict *and* observe of a key to the same shard reproduces the serial
//!   predictor's decisions bit for bit while letting unrelated keys proceed
//!   in parallel.
//! * **Locking discipline** — each shard sits behind its own
//!   `parking_lot::RwLock`. Predictions take the shard's read lock (many
//!   concurrent readers); model updates take its write lock. A write stalls
//!   only the readers of its own shard, never the other `shards - 1`.
//! * **Batching** — [`ConcurrentPredictor::predict_batch`] fans a slice of
//!   submissions across scoped worker threads ([`sizey_ml::parallel`]
//!   spawns per call — small batches run inline instead), and
//!   [`ConcurrentPredictor::observe_batch`] groups records by shard so each
//!   write lock is taken once per batch instead of once per record (shards
//!   are updated in parallel, records within a shard in input order).
//!
//! [`SharedPredictor`] is a cheap cloneable handle implementing
//! [`MemoryPredictor`], so one concurrent service instance can sit behind
//! several [`WorkflowTenant`](sizey_sim::WorkflowTenant)s of a multi-tenant
//! replay — every tenant then learns from every tenant's completions.

use sizey_provenance::{MachineId, TaskRecord, TaskTypeId};
use sizey_sim::{AttemptContext, MemoryPredictor, Prediction, TaskSubmission};

use crate::config::SizeyConfig;
use crate::sizey::SizeyPredictor;
use parking_lot::RwLock;
use sizey_ml::parallel::{default_parallelism, parallel_map};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Default number of shards: enough to keep a 16-thread pool busy without
/// fragmenting small key spaces.
pub const DEFAULT_SHARDS: usize = 16;

/// One prediction request of a batch: a task submission plus the
/// engine-owned retry context of this attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The submitted task.
    pub task: TaskSubmission,
    /// Retry state of this attempt (use [`AttemptContext::first`] for first
    /// submissions).
    pub ctx: AttemptContext,
}

impl BatchRequest {
    /// A first-submission request.
    pub fn first(task: TaskSubmission) -> Self {
        BatchRequest {
            task,
            ctx: AttemptContext::first(),
        }
    }
}

/// A sharded, lock-striped predictor service.
///
/// Generic over the predictor type: any [`MemoryPredictor`] whose learned
/// state is partitioned by (task type, machine) — Sizey and all the
/// baselines — can be served concurrently. See the
/// [module docs](self) for the sharding and locking discipline.
pub struct ConcurrentPredictor<P> {
    shards: Vec<RwLock<P>>,
    threads: usize,
}

/// The concurrent Sizey service.
pub type ConcurrentSizey = ConcurrentPredictor<SizeyPredictor>;

impl<P: MemoryPredictor + Sync> ConcurrentPredictor<P> {
    /// Builds a service with `shards` independent predictor instances
    /// produced by `factory` (called once per shard, in shard order). Batch
    /// calls fan out across [`default_parallelism`] threads; tune with
    /// [`with_threads`](ConcurrentPredictor::with_threads).
    pub fn new(shards: usize, factory: impl FnMut(usize) -> P) -> Self {
        assert!(shards > 0, "a predictor service needs at least one shard");
        ConcurrentPredictor {
            shards: (0..shards).map(factory).map(RwLock::new).collect(),
            threads: default_parallelism(),
        }
    }

    /// Sets the number of worker threads used by the batch APIs.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard routing: every predict and observe of one
    /// (task type, machine) key lands on the same shard for the lifetime of
    /// the service ([`DefaultHasher::new`] is unkeyed, unlike `RandomState`).
    /// Std does not pin the algorithm across Rust releases, so shard indices
    /// must never be persisted or compared across binaries.
    ///
    /// Hashing the two components directly is equivalent to hashing a
    /// [`TaskMachineKey`](sizey_provenance::TaskMachineKey) (derived `Hash`
    /// feeds the fields in declaration
    /// order) but avoids cloning two `String`s per request on the hot path.
    fn shard_of_parts(&self, task_type: &TaskTypeId, machine: &MachineId) -> usize {
        let mut hasher = DefaultHasher::new();
        task_type.hash(&mut hasher);
        machine.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    fn shard_of_task(&self, task: &TaskSubmission) -> usize {
        self.shard_of_parts(&task.task_type, &task.machine)
    }

    fn shard_of_record(&self, record: &TaskRecord) -> usize {
        self.shard_of_parts(&record.task_type, &record.machine)
    }

    /// Sizes one attempt: takes the read lock of the task's shard, so any
    /// number of predictions proceed concurrently between model updates.
    pub fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.shards[self.shard_of_task(task)]
            .read()
            .predict(task, ctx)
    }

    /// Feeds one finished attempt to the owning shard (write lock).
    pub fn observe(&self, record: &TaskRecord) {
        self.shards[self.shard_of_record(record)]
            .write()
            .observe(record);
    }

    /// Batches below this size are sized inline: [`parallel_map`] spawns
    /// scoped OS threads per call (there is no persistent pool), and for a
    /// handful of microsecond-scale predictions the spawn/join cost would
    /// exceed the work being fanned out.
    const SEQUENTIAL_BATCH_CUTOFF: usize = 32;

    /// Sizes a whole batch of submissions, fanning the requests across
    /// scoped worker threads. Results come back in request order. This is
    /// the hot path of a prediction service: per-request cost is one shard
    /// read lock, so throughput scales with cores once the batch is large
    /// enough to amortize the per-call thread spawns (small batches run
    /// inline — `SEQUENTIAL_BATCH_CUTOFF`).
    pub fn predict_batch(&self, requests: &[BatchRequest]) -> Vec<Prediction> {
        if self.threads == 1 || requests.len() < Self::SEQUENTIAL_BATCH_CUTOFF {
            return requests
                .iter()
                .map(|request| self.predict(&request.task, request.ctx))
                .collect();
        }
        parallel_map(requests, self.threads, |request| {
            self.predict(&request.task, request.ctx)
        })
    }

    /// Applies a batch of monitoring records with write batching: records
    /// are grouped by shard, each shard's write lock is taken **once**, and
    /// the shards update in parallel. Within a shard, records apply in input
    /// order, so single-shard batches are indistinguishable from serial
    /// observes.
    pub fn observe_batch(&self, records: &[TaskRecord]) {
        let mut by_shard: Vec<Vec<&TaskRecord>> = vec![Vec::new(); self.shards.len()];
        for record in records {
            by_shard[self.shard_of_record(record)].push(record);
        }
        let groups: Vec<(usize, Vec<&TaskRecord>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .collect();
        parallel_map(&groups, self.threads, |(shard, group)| {
            let mut guard = self.shards[*shard].write();
            for record in group {
                guard.observe(record);
            }
        });
    }

    /// Runs `f` on every shard under its read lock, in shard order —
    /// aggregation hook for telemetry (e.g. summing provenance sizes).
    pub fn map_shards<R>(&self, f: impl Fn(&P) -> R) -> Vec<R> {
        self.shards.iter().map(|shard| f(&shard.read())).collect()
    }

    /// Wraps the service in a cheap cloneable [`SharedPredictor`] handle.
    pub fn into_shared(self) -> SharedPredictor<P> {
        SharedPredictor(Arc::new(self))
    }
}

impl ConcurrentSizey {
    /// A concurrent Sizey service: `shards` independent [`SizeyPredictor`]s
    /// with identical configuration.
    pub fn sizey(config: SizeyConfig, shards: usize) -> Self {
        ConcurrentPredictor::new(shards, |_| SizeyPredictor::new(config.clone()))
    }

    /// A concurrent Sizey service with the paper's default configuration and
    /// [`DEFAULT_SHARDS`] shards.
    pub fn sizey_defaults() -> Self {
        Self::sizey(SizeyConfig::default(), DEFAULT_SHARDS)
    }
}

/// A cloneable handle to a [`ConcurrentPredictor`] that itself implements
/// [`MemoryPredictor`]: hand clones to several
/// [`WorkflowTenant`](sizey_sim::WorkflowTenant)s and they will share one
/// learned state across the whole cluster. `observe` through the handle
/// takes the owning shard's write lock internally, so `&mut self` on the
/// trait is satisfied without exclusive ownership.
pub struct SharedPredictor<P>(Arc<ConcurrentPredictor<P>>);

impl<P> Clone for SharedPredictor<P> {
    fn clone(&self) -> Self {
        SharedPredictor(Arc::clone(&self.0))
    }
}

impl<P> SharedPredictor<P> {
    /// The underlying service (for batch APIs and telemetry).
    pub fn service(&self) -> &ConcurrentPredictor<P> {
        &self.0
    }
}

/// The shared concurrent Sizey handle.
pub type SharedSizey = SharedPredictor<SizeyPredictor>;

impl SharedSizey {
    /// A shared concurrent Sizey service (see [`ConcurrentSizey::sizey`]).
    pub fn sizey(config: SizeyConfig, shards: usize) -> Self {
        ConcurrentSizey::sizey(config, shards).into_shared()
    }
}

impl<P: MemoryPredictor + Sync> MemoryPredictor for SharedPredictor<P> {
    fn name(&self) -> String {
        self.0.shards[0].read().name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.0.predict(task, ctx)
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.0.observe(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::{MachineId, TaskMachineKey, TaskOutcome, TaskTypeId};

    fn submission(task_type: &str, seq: u64, input: f64) -> TaskSubmission {
        TaskSubmission {
            workflow: "wf".into(),
            task_type: TaskTypeId::new(task_type),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            preset_memory_bytes: 20e9,
        }
    }

    fn record(task_type: &str, seq: u64, input: f64, peak: f64) -> TaskRecord {
        TaskRecord {
            workflow: "wf".into(),
            task_type: TaskTypeId::new(task_type),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: input,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 1.5,
            runtime_seconds: 60.0,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome: TaskOutcome::Succeeded,
        }
    }

    fn train(observe: &mut dyn FnMut(&TaskRecord), task_type: &str, n: u64) {
        for i in 1..=n {
            let input = i as f64 * 1e9;
            observe(&record(task_type, i, input, 2.0 * input + 1e9));
        }
    }

    #[test]
    fn sharded_decisions_match_the_serial_predictor() {
        let mut serial = SizeyPredictor::with_defaults();
        let concurrent = ConcurrentSizey::sizey_defaults();
        for task_type in ["align", "sort", "call", "merge", "plot"] {
            train(&mut |r| serial.observe(r), task_type, 14);
            train(&mut |r| concurrent.observe(r), task_type, 14);
        }
        for task_type in ["align", "sort", "call", "merge", "plot"] {
            for (seq, input) in [(100, 3e9), (101, 7.5e9), (102, 11e9)] {
                let task = submission(task_type, seq, input);
                let a = serial.predict(&task, AttemptContext::first());
                let b = concurrent.predict(&task, AttemptContext::first());
                assert_eq!(a, b, "decision diverged for {task_type}/{seq}");
                let ra = serial.predict(&task, AttemptContext::retry(1, a.allocation_bytes));
                let rb = concurrent.predict(&task, AttemptContext::retry(1, b.allocation_bytes));
                assert_eq!(ra, rb);
            }
        }
    }

    #[test]
    fn predict_batch_matches_sequential_predicts_in_order() {
        let concurrent = ConcurrentSizey::sizey_defaults().with_threads(4);
        for task_type in ["a", "b", "c"] {
            train(&mut |r| concurrent.observe(r), task_type, 12);
        }
        let requests: Vec<BatchRequest> = (0..60)
            .map(|i| {
                let task_type = ["a", "b", "c"][i % 3];
                BatchRequest::first(submission(task_type, 200 + i as u64, (i + 1) as f64 * 5e8))
            })
            .collect();
        let batched = concurrent.predict_batch(&requests);
        assert_eq!(batched.len(), requests.len());
        for (request, prediction) in requests.iter().zip(&batched) {
            assert_eq!(*prediction, concurrent.predict(&request.task, request.ctx));
        }
        // Small batches take the inline path; same contract.
        let tiny = &requests[..5];
        for (request, prediction) in tiny.iter().zip(concurrent.predict_batch(tiny)) {
            assert_eq!(prediction, concurrent.predict(&request.task, request.ctx));
        }
    }

    #[test]
    fn observe_batch_is_equivalent_to_serial_observes() {
        let batched = ConcurrentSizey::sizey_defaults();
        let serial = ConcurrentSizey::sizey_defaults();
        let mut records = Vec::new();
        for task_type in ["x", "y"] {
            for i in 1..=15u64 {
                let input = i as f64 * 1e9;
                records.push(record(task_type, i, input, 1.5 * input + 5e8));
            }
        }
        batched.observe_batch(&records);
        for r in &records {
            serial.observe(r);
        }
        for task_type in ["x", "y"] {
            let task = submission(task_type, 900, 6e9);
            assert_eq!(
                batched.predict(&task, AttemptContext::first()),
                serial.predict(&task, AttemptContext::first())
            );
        }
        // Every record landed in exactly one shard.
        let total: usize = batched.map_shards(|p| p.provenance().len()).iter().sum();
        assert_eq!(total, records.len());
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        let service = ConcurrentSizey::sizey(SizeyConfig::default(), 7);
        for i in 0..50 {
            let task = submission(&format!("t{i}"), i, 1e9);
            let shard = service.shard_of_task(&task);
            assert!(shard < 7);
            assert_eq!(shard, service.shard_of_task(&task));
            // Component hashing must agree with hashing the struct key —
            // the allocation-free routing relies on derived `Hash` feeding
            // the fields in declaration order.
            let mut hasher = DefaultHasher::new();
            TaskMachineKey {
                task_type: task.task_type.clone(),
                machine: task.machine.clone(),
            }
            .hash(&mut hasher);
            assert_eq!(shard, (hasher.finish() % 7) as usize);
        }
    }

    #[test]
    fn shared_handle_clones_share_learned_state() {
        let mut handle_a = SharedSizey::sizey(SizeyConfig::default(), 4);
        let handle_b = handle_a.clone();
        // Tenant A observes; tenant B predicts from the shared state.
        train(&mut |r| handle_a.observe(r), "shared", 14);
        let task = submission("shared", 500, 5e9);
        let through_b =
            sizey_sim::MemoryPredictor::predict(&handle_b, &task, AttemptContext::first());
        assert!(through_b.raw_estimate_bytes.is_some());
        assert!(through_b.allocation_bytes < 20e9);
        assert_eq!(handle_b.name(), "Sizey");
    }

    #[test]
    fn single_shard_still_works() {
        let service = ConcurrentSizey::sizey(SizeyConfig::default(), 1);
        train(&mut |r| service.observe(r), "only", 12);
        let p = service.predict(&submission("only", 50, 4e9), AttemptContext::first());
        assert!(p.raw_estimate_bytes.is_some());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ConcurrentSizey::sizey(SizeyConfig::default(), 0);
    }
}
