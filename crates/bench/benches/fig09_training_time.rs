//! Criterion micro-benchmark backing Fig. 9: the cost of one Sizey online
//! learning step under full retraining (with hyper-parameter optimisation)
//! and under incremental updates, at different history sizes.
//!
//! The paper reports a median of 1.09 s for full retraining and 17.5 ms for
//! incremental updates; the absolute numbers differ here (different models,
//! language and hardware) but the orders-of-magnitude gap between the two
//! modes is the result under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sizey_core::{ModelPool, OnlineMode, SizeyConfig};

/// Builds a pool warmed with `history` observations using cheap incremental
/// updates, so the measured step isolates the configured learning mode.
fn warmed_pool(history: usize) -> ModelPool {
    let warm_config = SizeyConfig {
        online: OnlineMode::Incremental {
            retrain_interval: 0,
            mlp_update_interval: 1,
        },
        hyperparameter_optimization: false,
        ..SizeyConfig::default()
    };
    let mut pool = ModelPool::new(&warm_config);
    for i in 0..history {
        let input = 1e9 + (i as f64 % 57.0) * 1e8;
        let peak = 2.0 * input + 1e9 + (i as f64 % 13.0) * 5e7;
        pool.observe_success(&[input], peak, &warm_config);
    }
    pool
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_online_learning_step");
    group.sample_size(10);

    let full = SizeyConfig::full_retraining();
    // `mlp_update_interval: 1` keeps the benchmark measuring the full
    // incremental step (including the MLP warm-start) on every iteration.
    let incremental = SizeyConfig {
        online: OnlineMode::Incremental {
            retrain_interval: 0,
            mlp_update_interval: 1,
        },
        ..SizeyConfig::default()
    };

    for &history in &[16usize, 64usize] {
        group.bench_with_input(
            BenchmarkId::new("full_retrain_with_hpo", history),
            &history,
            |b, &h| {
                b.iter_batched(
                    || warmed_pool(h),
                    |mut pool| {
                        pool.observe_success(&[3.3e9], 7.7e9, &full);
                        pool
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental", history),
            &history,
            |b, &h| {
                b.iter_batched(
                    || warmed_pool(h),
                    |mut pool| {
                        pool.observe_success(&[3.3e9], 7.7e9, &incremental);
                        pool
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
