//! Fig. 8c — distribution of the methods' task failures, aggregated by task
//! type.
//!
//! Run with `cargo run -p sizey-bench --release --bin fig08c_task_failures`.

use sizey_bench::{
    banner, evaluate_all_methods, fmt, generate_workloads, render_table, HarnessSettings,
};
use sizey_sim::SimulationConfig;
use sizey_workflows::Distribution;
use std::collections::BTreeMap;

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Fig. 8c: distribution of task failures per task type, by method",
        &settings,
    );

    let workloads = generate_workloads(&settings);
    let sim = SimulationConfig::default();
    let results = evaluate_all_methods(&workloads, &sim);

    let mut rows = Vec::new();
    for (method, reports) in &results {
        // Failures per task type across all workflows; task types with zero
        // failures are included so the distribution matches the paper's
        // "aggregated by task type" box plots.
        let mut per_type: BTreeMap<String, usize> = BTreeMap::new();
        for workload in &workloads {
            for task_type in &workload.spec.task_types {
                per_type.insert(format!("{}/{}", workload.spec.name, task_type.name), 0);
            }
        }
        for report in reports {
            for (task_type, count) in report.failures_by_task_type() {
                *per_type
                    .entry(format!("{}/{}", report.workflow, task_type))
                    .or_insert(0) += count;
            }
        }
        let values: Vec<f64> = per_type.values().map(|&v| v as f64).collect();
        let dist = Distribution::from_values(&values);
        let total: usize = per_type.values().sum();
        rows.push(vec![
            method.name().to_string(),
            total.to_string(),
            fmt(dist.median, 1),
            fmt(dist.q3, 1),
            fmt(dist.max, 0),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "Method",
                "Total Failures",
                "Median per Type",
                "Q3 per Type",
                "Max per Type"
            ],
            &rows
        )
    );
    println!("Paper reference (Fig. 8c): Witt-Wastage has the highest median number of");
    println!("failures, followed by Witt-LR and Sizey; Witt-Percentile and Tovar-PPM fail");
    println!("rarely; Workflow-Presets never fail.");
}
