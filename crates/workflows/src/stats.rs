//! Workload statistics used by the figure-reproduction harnesses.
//!
//! These helpers aggregate generated task instances into exactly the numbers
//! the paper plots: per-task-type peak-memory distributions (Fig. 1),
//! input-size/memory scatter data (Fig. 2), per-workflow resource
//! distributions (Fig. 7) and the Table I inventory.

use crate::model::{TaskInstance, WorkflowSpec};
use sizey_provenance::TaskTypeId;
use std::collections::BTreeMap;

/// Simple distribution summary (quartiles and extremes) of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Number of observations.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Distribution {
    /// Computes the distribution summary of a sample. Returns an all-zero
    /// summary for an empty slice.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Distribution {
                count: 0,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let q = |p: f64| -> f64 {
            let rank = p * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                sorted[lo] * (hi as f64 - rank) + sorted[hi] * (rank - lo as f64)
            }
        };
        Distribution {
            count: sorted.len(),
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

/// Peak-memory distribution per task type (Fig. 1).
pub fn peak_memory_by_task_type(instances: &[TaskInstance]) -> BTreeMap<TaskTypeId, Distribution> {
    let mut grouped: BTreeMap<TaskTypeId, Vec<f64>> = BTreeMap::new();
    for inst in instances {
        grouped
            .entry(inst.task_type.clone())
            .or_default()
            .push(inst.true_peak_bytes);
    }
    grouped
        .into_iter()
        .map(|(k, v)| (k, Distribution::from_values(&v)))
        .collect()
}

/// Input-size / peak-memory scatter points for one task type (Fig. 2).
pub fn input_memory_scatter(instances: &[TaskInstance], task_type: &str) -> Vec<(f64, f64)> {
    instances
        .iter()
        .filter(|i| i.task_type.as_str() == task_type)
        .map(|i| (i.input_bytes, i.true_peak_bytes))
        .collect()
}

/// Per-workflow resource distributions (Fig. 7): CPU utilisation (%), memory
/// (MB), I/O read (MB), I/O write (MB).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowResourceProfile {
    /// Workflow name.
    pub workflow: String,
    /// CPU utilisation distribution in percent.
    pub cpu_utilization_pct: Distribution,
    /// Peak-memory distribution in megabytes.
    pub memory_mb: Distribution,
    /// I/O read distribution in megabytes.
    pub io_read_mb: Distribution,
    /// I/O write distribution in megabytes.
    pub io_write_mb: Distribution,
}

/// Computes the Fig. 7 resource profile of one generated workflow.
pub fn workflow_resource_profile(
    workflow: &str,
    instances: &[TaskInstance],
) -> WorkflowResourceProfile {
    let cpu: Vec<f64> = instances.iter().map(|i| i.cpu_utilization_pct).collect();
    let mem: Vec<f64> = instances.iter().map(|i| i.true_peak_bytes / 1e6).collect();
    let read: Vec<f64> = instances.iter().map(|i| i.io_read_bytes / 1e6).collect();
    let write: Vec<f64> = instances.iter().map(|i| i.io_write_bytes / 1e6).collect();
    WorkflowResourceProfile {
        workflow: workflow.to_string(),
        cpu_utilization_pct: Distribution::from_values(&cpu),
        memory_mb: Distribution::from_values(&mem),
        io_read_mb: Distribution::from_values(&read),
        io_write_mb: Distribution::from_values(&write),
    }
}

/// One row of the Table I inventory.
#[derive(Debug, Clone, PartialEq)]
pub struct InventoryRow {
    /// Workflow name.
    pub workflow: String,
    /// Number of task types.
    pub task_types: usize,
    /// Average number of task instances per task type.
    pub avg_instances_per_type: f64,
}

/// Computes the Table I inventory for a set of workflow specs.
pub fn inventory(specs: &[WorkflowSpec]) -> Vec<InventoryRow> {
    specs
        .iter()
        .map(|s| InventoryRow {
            workflow: s.name.clone(),
            task_types: s.n_task_types(),
            avg_instances_per_type: s.avg_instances_per_type(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_workflow, GeneratorConfig};
    use crate::profiles;

    fn sample_instances() -> Vec<TaskInstance> {
        generate_workflow(&profiles::iwd(), &GeneratorConfig::scaled(0.1, 3))
    }

    #[test]
    fn distribution_quartiles_are_ordered() {
        let d = Distribution::from_values(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.median, 3.0);
        assert!(d.q1 <= d.median && d.median <= d.q3);
        assert_eq!(d.mean, 3.0);
    }

    #[test]
    fn distribution_of_empty_slice_is_zero() {
        let d = Distribution::from_values(&[]);
        assert_eq!(d.count, 0);
        assert_eq!(d.max, 0.0);
    }

    #[test]
    fn peak_memory_by_task_type_groups_all_instances() {
        let instances = sample_instances();
        let by_type = peak_memory_by_task_type(&instances);
        assert_eq!(by_type.len(), profiles::iwd().n_task_types());
        let total: usize = by_type.values().map(|d| d.count).sum();
        assert_eq!(total, instances.len());
    }

    #[test]
    fn scatter_returns_only_requested_type() {
        let instances = sample_instances();
        let scatter = input_memory_scatter(&instances, "Preprocessing");
        assert!(!scatter.is_empty());
        let expected = instances
            .iter()
            .filter(|i| i.task_type.as_str() == "Preprocessing")
            .count();
        assert_eq!(scatter.len(), expected);
        assert!(scatter.iter().all(|&(x, y)| x > 0.0 && y > 0.0));
    }

    #[test]
    fn resource_profile_has_positive_medians() {
        let instances = sample_instances();
        let profile = workflow_resource_profile("iwd", &instances);
        assert!(profile.cpu_utilization_pct.median > 0.0);
        assert!(profile.memory_mb.median > 0.0);
        assert!(profile.io_read_mb.median > 0.0);
        assert!(profile.io_write_mb.median > 0.0);
    }

    #[test]
    fn inventory_matches_table_i() {
        let rows = inventory(&profiles::all_workflows());
        assert_eq!(rows.len(), 6);
        let mag = rows.iter().find(|r| r.workflow == "mag").unwrap();
        assert_eq!(mag.task_types, 8);
        assert!((mag.avg_instances_per_type - 720.0).abs() < 0.5);
    }
}
