//! The lint rules. Each rule is a pure function over a lexed file; the
//! scanner in [`scan_source`] wires them to path-based applicability,
//! hot-path markers and `// lint:allow(rule): why` suppressions.
//!
//! Rule catalogue (ids are what `--rule` and `lint:allow(..)` accept):
//!
//! * `float-total-order` — `.partial_cmp()` on floats panics or silently
//!   reorders on NaN (the bug fixed by hand in PRs 4 and 5); use
//!   `total_cmp`.
//! * `no-hash-iter` — iterating a `HashMap`/`HashSet` in the deterministic
//!   crates (`sim`, `workflows`, `core`) yields platform/seed-dependent
//!   order and breaks bit-identical replay; use `BTreeMap`/`BTreeSet` or
//!   sort explicitly.
//! * `no-wallclock-in-sim` — `Instant::now`/`SystemTime` must not leak into
//!   the virtual-clock simulator; wall-clock reads live in `crates/bench`.
//! * `no-panic-hot-path` — in modules annotated `#![doc = "lint:hot-path"]`
//!   (predict/observe/select_node), no `unwrap`/`expect`/`panic!`-family
//!   macros or panicking `[..]` indexing; use `get`/pattern matching.
//! * `safety-comments` — every `unsafe` keyword must be covered by a
//!   `// SAFETY:` comment on the same line or the comment block directly
//!   above it.

use crate::lexer::{lex, Lexed, Line};

pub const RULES: [&str; 5] = [
    "float-total-order",
    "no-hash-iter",
    "no-wallclock-in-sim",
    "no-panic-hot-path",
    "safety-comments",
];

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    /// 1-based.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `// lint:allow(rule): justification` marker.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    /// 1-based line of the comment carrying the marker.
    pub line: usize,
    pub rule: String,
    /// `None` when the marker carries no justification text (itself a
    /// finding: suppressions must say why).
    pub justification: Option<String>,
}

/// Scans one file. `rel` is the workspace-relative path (used both for
/// reporting and for path-scoped rule applicability). Returns the findings
/// that survive suppression plus every `lint:allow` marker found.
pub fn scan_source(rel: &str, source: &str, enabled: &[&str]) -> (Vec<Finding>, Vec<AllowEntry>) {
    let lexed = lex(source);
    let hot_path = source
        .lines()
        .any(|l| l.trim_start().starts_with("#![doc") && l.contains("lint:hot-path"));

    let allows = collect_allows(rel, &lexed);
    let mut findings: Vec<Finding> = Vec::new();

    let on = |rule: &str| enabled.contains(&rule);

    if on("float-total-order") {
        float_total_order(rel, &lexed, &mut findings);
    }
    if on("no-hash-iter") && is_deterministic_path(rel) {
        no_hash_iter(rel, &lexed, &mut findings);
    }
    if on("no-wallclock-in-sim") && !is_wallclock_allowlisted(rel) {
        no_wallclock(rel, &lexed, &mut findings);
    }
    if on("no-panic-hot-path") && hot_path {
        no_panic_hot_path(rel, &lexed, &mut findings);
    }
    if on("safety-comments") {
        safety_comments(rel, &lexed, &mut findings);
    }

    // Apply suppressions: a finding is silenced by a justified allow for its
    // rule on the same line or anywhere in the contiguous comment block
    // directly above it (so multi-line justifications work).
    findings.retain(|f| {
        let mut first_covered = f.line; // 1-based; block start line
        while first_covered >= 2 && lexed.lines[first_covered - 2].is_comment_only() {
            first_covered -= 1;
        }
        !allows.iter().any(|a| {
            a.rule == f.rule
                && a.justification.is_some()
                && a.line >= first_covered
                && a.line <= f.line
        })
    });

    // Suppressions without a justification are findings themselves (and
    // cannot be suppressed away).
    for a in &allows {
        if a.justification.is_none() {
            findings.push(Finding {
                file: rel.to_string(),
                line: a.line,
                rule: "lint-allow",
                message: format!(
                    "suppression lint:allow({}) has no justification; write \
                     `// lint:allow({}): <why this is sound>`",
                    a.rule, a.rule
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (findings, allows)
}

/// Crates whose iteration order is part of the bit-identical replay
/// contract.
fn is_deterministic_path(rel: &str) -> bool {
    rel.starts_with("crates/sim/")
        || rel.starts_with("crates/workflows/")
        || rel.starts_with("crates/core/")
}

/// Paths allowed to read the wall clock: the bench harness (it measures
/// real time by design) and this linter itself.
fn is_wallclock_allowlisted(rel: &str) -> bool {
    rel.starts_with("crates/bench/") || rel.starts_with("crates/xtask/")
}

fn collect_allows(rel: &str, lexed: &Lexed) -> Vec<AllowEntry> {
    let mut allows = Vec::new();
    for (i, line) in lexed.lines.iter().enumerate() {
        let text = &line.comment;
        let mut rest = text.as_str();
        while let Some(start) = rest.find("lint:allow(") {
            let after = &rest[start + "lint:allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let rule = after[..close].trim().to_string();
            // Only known rule ids count as suppressions; prose like
            // `lint:allow(...)` in docs is ignored. A typo'd id is still
            // visible because the finding it meant to silence keeps firing.
            if !RULES.contains(&rule.as_str()) {
                rest = &after[close + 1..];
                continue;
            }
            let tail = &after[close + 1..];
            let justification = tail
                .strip_prefix(':')
                .map(str::trim)
                .filter(|j| !j.is_empty())
                .map(str::to_string);
            allows.push(AllowEntry {
                file: rel.to_string(),
                line: i + 1,
                rule,
                justification,
            });
            rest = tail;
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// Token helpers over the blanked code channel.

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Byte offsets where `word` occurs in `code` with identifier boundaries on
/// both sides.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// The last non-whitespace char before byte offset `at`, if any.
fn prev_nonspace(code: &str, at: usize) -> Option<char> {
    code[..at].chars().rev().find(|c| !c.is_whitespace())
}

/// The identifier ending right before byte offset `at` (skipping
/// whitespace), if the preceding token is an identifier.
fn prev_word(code: &str, at: usize) -> Option<&str> {
    let trimmed = code[..at].trim_end();
    let end = trimmed.len();
    let start = trimmed
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, _)| i)?;
    if start == end {
        return None;
    }
    Some(&trimmed[start..end])
}

/// The identifier starting right after byte offset `at` (skipping
/// whitespace), if the next token is an identifier.
fn next_word(code: &str, at: usize) -> Option<&str> {
    let rest = code[at..].trim_start();
    let end = rest
        .char_indices()
        .take_while(|(_, c)| is_ident_char(*c))
        .last()
        .map(|(i, c)| i + c.len_utf8())?;
    Some(&rest[..end])
}

// ---------------------------------------------------------------------------
// Rules.

fn float_total_order(rel: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for (i, line) in live_lines(lexed) {
        for at in word_positions(&line.code, "partial_cmp") {
            // `.partial_cmp(..)` is a call; `fn partial_cmp` (a PartialOrd
            // impl forwarding to Ord/total_cmp) is fine.
            if prev_nonspace(&line.code, at) == Some('.') {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "float-total-order",
                    message: "call to .partial_cmp() — use f64::total_cmp (NaN-safe, \
                              deterministic total order)"
                        .to_string(),
                });
            }
        }
    }
}

const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "values",
    "values_mut",
    "keys",
    "drain",
    "retain",
    "into_iter",
    "into_values",
    "into_keys",
];

fn no_hash_iter(rel: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    // Pass 1: names bound to HashMap/HashSet in this file (fields, lets).
    let mut names: Vec<String> = Vec::new();
    for (_, line) in live_lines(lexed) {
        for ty in ["HashMap", "HashSet"] {
            for at in word_positions(&line.code, ty) {
                let name = match prev_nonspace(&line.code, at) {
                    // `pools: HashMap<..>` (field or typed let)
                    Some(':') => {
                        let before_colon = line.code[..at].trim_end();
                        // Skip the `::` of a fully qualified path like
                        // `std::collections::HashMap`.
                        if before_colon.ends_with("::") {
                            let path_start = before_colon.len() - 2;
                            match prev_nonspace(&line.code, path_start) {
                                Some(c) if is_ident_char(c) => {
                                    // `x: std::collections::HashMap<..>` —
                                    // walk back over the path segments to
                                    // the binding name before the first `:`.
                                    binding_before_path(&line.code, path_start)
                                }
                                _ => None,
                            }
                        } else {
                            prev_word(&line.code, before_colon.len() - 1).map(str::to_string)
                        }
                    }
                    // `let x = HashMap::new()`
                    Some('=') => {
                        let eq = line.code[..at].trim_end().len() - 1;
                        prev_word(&line.code, eq).map(str::to_string)
                    }
                    _ => None,
                };
                if let Some(n) = name {
                    if !n.is_empty() && n != "mut" && !names.contains(&n) {
                        names.push(n);
                    }
                }
            }
        }
    }

    // Pass 2: iteration over any tracked name.
    let live: Vec<(usize, &Line)> = live_lines(lexed).collect();
    for (k, (i, line)) in live.iter().enumerate() {
        for name in &names {
            for at in word_positions(&line.code, name) {
                let end = at + name.len();
                let mut rest = line.code[end..].trim_start();
                // rustfmt splits long chains: `self.pools\n    .iter()`.
                if rest.is_empty() {
                    if let Some((_, next)) = live.get(k + 1) {
                        rest = next.code.trim_start();
                    }
                }
                // `name.iter()` and friends.
                if let Some(m) = rest.strip_prefix('.').and_then(|r| next_word(r, 0)) {
                    if HASH_ITER_METHODS.contains(&m) {
                        findings.push(Finding {
                            file: rel.to_string(),
                            line: i + 1,
                            rule: "no-hash-iter",
                            message: format!(
                                "iteration over hash-ordered `{name}` (.{m}) in a \
                                 deterministic module — use BTreeMap/BTreeSet or sort \
                                 explicitly; escape hatch: // lint:allow(no-hash-iter): why"
                            ),
                        });
                        continue;
                    }
                }
                // `for x in name` / `in &name` / `in &mut self.name`.
                let mut before = line.code[..at].trim_end();
                if let Some(b) = before.strip_suffix("self.") {
                    before = b.trim_end();
                }
                while before.ends_with('&') || before.ends_with("mut") {
                    before = before
                        .strip_suffix("mut")
                        .unwrap_or_else(|| &before[..before.len() - 1])
                        .trim_end();
                }
                if before.ends_with("in") && prev_word(before, before.len()) == Some("in") {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: i + 1,
                        rule: "no-hash-iter",
                        message: format!(
                            "for-loop over hash-ordered `{name}` in a deterministic \
                             module — use BTreeMap/BTreeSet or sort explicitly; escape \
                             hatch: // lint:allow(no-hash-iter): why"
                        ),
                    });
                }
            }
        }
    }
}

/// For `x: std::collections::HashMap<..>`, walks back from the final path
/// separator to the binding name before the type's first `:`.
fn binding_before_path(code: &str, mut at: usize) -> Option<String> {
    loop {
        let word_start = {
            let trimmed = code[..at].trim_end();
            let mut start = trimmed.len();
            for (idx, c) in trimmed.char_indices().rev() {
                if is_ident_char(c) {
                    start = idx;
                } else {
                    break;
                }
            }
            start
        };
        if word_start == code[..at].trim_end().len() {
            return None;
        }
        let before = code[..word_start].trim_end();
        if before.ends_with("::") {
            at = before.len() - 2;
        } else if before.ends_with(':') {
            return prev_word(code, before.len() - 1).map(str::to_string);
        } else {
            return None;
        }
    }
}

fn no_wallclock(rel: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for (i, line) in live_lines(lexed) {
        for at in word_positions(&line.code, "Instant") {
            let rest = line.code[at + "Instant".len()..].trim_start();
            if rest.starts_with("::") && next_word(rest, 2) == Some("now") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule: "no-wallclock-in-sim",
                    message: "Instant::now() outside the bench allowlist — the simulator \
                              runs on a virtual clock; thread time through explicitly"
                        .to_string(),
                });
            }
        }
        if !word_positions(&line.code, "SystemTime").is_empty() {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "no-wallclock-in-sim",
                message: "SystemTime outside the bench allowlist — the simulator runs \
                          on a virtual clock"
                    .to_string(),
            });
        }
    }
}

fn no_panic_hot_path(rel: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let mut push = |i: usize, what: &str| {
        findings.push(Finding {
            file: rel.to_string(),
            line: i + 1,
            rule: "no-panic-hot-path",
            message: format!(
                "{what} in a lint:hot-path module — the predict/observe/select_node \
                 paths must not panic; use get()/pattern matching or justify with \
                 // lint:allow(no-panic-hot-path): why"
            ),
        });
    };
    for (i, line) in live_lines(lexed) {
        for word in ["unwrap", "expect"] {
            for at in word_positions(&line.code, word) {
                if prev_nonspace(&line.code, at) == Some('.') {
                    push(i, &format!(".{word}()"));
                }
            }
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            for at in word_positions(&line.code, mac) {
                if line.code[at + mac.len()..].trim_start().starts_with('!') {
                    push(i, &format!("{mac}! macro"));
                }
            }
        }
        // Panicking index/slice expressions: `[` directly after an
        // identifier, `)` or `]`. Attribute (`#[`), macro-bang (`vec![`),
        // type (`: [f64; 4]`) and literal (`= [..]`) brackets all have a
        // different preceding char and are not flagged.
        for (at, c) in line.code.char_indices() {
            if c == '[' {
                match prev_nonspace(&line.code, at) {
                    Some(p) if is_ident_char(p) || p == ')' || p == ']' => {
                        push(i, "panicking index/slice expression ([..] without get)");
                    }
                    _ => {}
                }
            }
        }
    }
}

fn safety_comments(rel: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for (i, line) in live_lines(lexed) {
        if word_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        // Covered when the unsafe line itself, or the contiguous
        // comment-only block directly above it, says SAFETY:.
        let mut covered = line.comment.contains("SAFETY:");
        let mut j = i;
        while !covered && j > 0 && lexed.lines[j - 1].is_comment_only() {
            j -= 1;
            covered = lexed.lines[j].comment.contains("SAFETY:");
        }
        if !covered {
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "safety-comments",
                message: "`unsafe` without a `// SAFETY:` comment on the same line or \
                          directly above — state the invariant that makes this sound"
                    .to_string(),
            });
        }
    }
}

/// Lines that rules should look at: everything outside `#[cfg(test)]` /
/// `#[test]` regions.
fn live_lines(lexed: &Lexed) -> impl Iterator<Item = (usize, &Line)> {
    lexed
        .lines
        .iter()
        .enumerate()
        .filter(|(i, _)| !lexed.in_test[*i])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(rel: &str, src: &str, rule: &str) -> Vec<Finding> {
        scan_source(rel, src, &[rule]).0
    }

    // --- float-total-order -------------------------------------------------

    #[test]
    fn flags_partial_cmp_calls() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let f = findings("crates/ml/src/x.rs", src, "float-total-order");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "float-total-order");
    }

    #[test]
    fn ignores_partial_cmp_definitions_and_total_cmp() {
        let src = "impl PartialOrd for T {\n    fn partial_cmp(&self, o: &T) -> Option<Ordering> {\n        Some(self.cmp(o))\n    }\n}\nfn g(a: f64, b: f64) -> Ordering { a.total_cmp(&b) }\n";
        assert!(findings("crates/ml/src/x.rs", src, "float-total-order").is_empty());
    }

    #[test]
    fn ignores_partial_cmp_in_comments_and_strings() {
        let src = "/// docs mention partial_cmp(..).expect() here\nfn f() { let s = \"a.partial_cmp(b)\"; }\n";
        assert!(findings("crates/sim/src/x.rs", src, "float-total-order").is_empty());
    }

    // --- no-hash-iter ------------------------------------------------------

    #[test]
    fn flags_hashmap_method_iteration_in_deterministic_crate() {
        let src = "struct S { pools: HashMap<K, V> }\nimpl S {\n    fn f(&self) { for v in self.pools.values() {} }\n}\n";
        let f = findings("crates/core/src/x.rs", src, "no-hash-iter");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_for_loop_over_hashmap_binding() {
        let src = "fn f() {\n    let mut m = HashMap::new();\n    for (k, v) in &mut m {}\n}\n";
        let f = findings("crates/sim/src/x.rs", src, "no-hash-iter");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn lookup_only_hashmap_is_clean() {
        let src = "struct S { cache: HashMap<K, V> }\nimpl S {\n    fn get(&self, k: &K) -> Option<&V> { self.cache.get(k) }\n    fn put(&mut self, k: K, v: V) { self.cache.insert(k, v); }\n}\n";
        assert!(findings("crates/sim/src/x.rs", src, "no-hash-iter").is_empty());
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "struct S { pools: BTreeMap<K, V> }\nimpl S {\n    fn f(&self) { for v in self.pools.values() {} }\n}\n";
        assert!(findings("crates/core/src/x.rs", src, "no-hash-iter").is_empty());
    }

    #[test]
    fn hashmap_iteration_outside_deterministic_crates_is_clean() {
        let src = "struct S { m: HashMap<K, V> }\nimpl S {\n    fn f(&self) { for v in self.m.values() {} }\n}\n";
        assert!(findings("crates/ml/src/x.rs", src, "no-hash-iter").is_empty());
    }

    #[test]
    fn justified_allow_suppresses_and_is_listed() {
        let src = "struct S { m: HashMap<K, V> }\nimpl S {\n    // lint:allow(no-hash-iter): drained into a Vec that is key-sorted below\n    fn f(&self) { for v in self.m.values() {} }\n}\n";
        let (f, allows) = scan_source("crates/sim/src/x.rs", src, &["no-hash-iter"]);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(allows.len(), 1);
        assert!(allows[0].justification.is_some());
    }

    #[test]
    fn multi_line_justification_block_suppresses() {
        let src = "fn f() {\n    // lint:allow(no-wallclock-in-sim): measures real latency for\n    // diagnostics only; never feeds the virtual clock.\n    let t = Instant::now();\n}\n";
        let (f, _) = scan_source("crates/sim/src/x.rs", src, &["no-wallclock-in-sim"]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unjustified_allow_is_a_finding() {
        let src = "struct S { m: HashMap<K, V> }\nimpl S {\n    // lint:allow(no-hash-iter)\n    fn f(&self) { for v in self.m.values() {} }\n}\n";
        let (f, _) = scan_source("crates/sim/src/x.rs", src, &["no-hash-iter"]);
        // The iteration finding stays AND the bare allow is flagged.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == "lint-allow"));
        assert!(f.iter().any(|x| x.rule == "no-hash-iter"));
    }

    #[test]
    fn flags_for_loop_over_self_qualified_field() {
        let src = "struct S { pools: HashMap<K, V> }\nimpl S {\n    fn f(&mut self) { for (k, p) in &mut self.pools {} }\n}\n";
        let f = findings("crates/core/src/x.rs", src, "no-hash-iter");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_method_chain_split_across_lines() {
        let src = "struct S { pools: HashMap<K, V> }\nimpl S {\n    fn f(&self) -> usize {\n        self.pools\n            .iter()\n            .count()\n    }\n}\n";
        let f = findings("crates/core/src/x.rs", src, "no-hash-iter");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn fully_qualified_hashmap_field_is_tracked() {
        let src = "struct S { m: std::collections::HashMap<K, V> }\nimpl S {\n    fn f(&self) { for v in self.m.keys() {} }\n}\n";
        let f = findings("crates/sim/src/x.rs", src, "no-hash-iter");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    // --- no-wallclock-in-sim ----------------------------------------------

    #[test]
    fn flags_instant_now_in_sim() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let f = findings("crates/sim/src/x.rs", src, "no-wallclock-in-sim");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn flags_system_time() {
        let src = "fn f() { let t = SystemTime::now(); }\n";
        assert_eq!(
            findings("crates/core/src/x.rs", src, "no-wallclock-in-sim").len(),
            1
        );
    }

    #[test]
    fn bench_crate_may_read_wall_clock() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(findings("crates/bench/src/bin/x.rs", src, "no-wallclock-in-sim").is_empty());
    }

    #[test]
    fn instant_type_annotation_is_clean() {
        let src = "struct S { started: Instant }\n";
        assert!(findings("crates/sim/src/x.rs", src, "no-wallclock-in-sim").is_empty());
    }

    // --- no-panic-hot-path -------------------------------------------------

    const HOT: &str = "#![doc = \"lint:hot-path\"]\n";

    #[test]
    fn flags_unwrap_expect_panic_and_indexing_in_hot_path() {
        let src = format!(
            "{HOT}fn f(v: &[f64], i: usize) -> f64 {{\n    let a = v.first().unwrap();\n    let b = v.iter().next().expect(\"x\");\n    if i > v.len() {{ panic!(\"oob\"); }}\n    v[i] + a + b\n}}\n"
        );
        let f = findings("crates/core/src/x.rs", &src, "no-panic-hot-path");
        let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6], "{f:?}");
    }

    #[test]
    fn unmarked_module_is_exempt() {
        let src = "fn f(v: &[f64]) -> f64 { v[0] + v.first().unwrap() }\n";
        assert!(findings("crates/core/src/x.rs", src, "no-panic-hot-path").is_empty());
    }

    #[test]
    fn get_based_access_is_clean_in_hot_path() {
        let src = format!(
            "{HOT}fn f(v: &[f64]) -> f64 {{\n    let x: [f64; 2] = [1.0, 2.0];\n    v.get(0).copied().unwrap_or(x.len() as f64)\n}}\n"
        );
        let f = findings("crates/core/src/x.rs", &src, "no-panic-hot-path");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn attributes_and_macros_are_not_indexing() {
        let src = format!(
            "{HOT}#[derive(Clone)]\nstruct S;\nfn f(n: usize) -> Vec<f64> {{ vec![0.0; n] }}\n"
        );
        assert!(findings("crates/core/src/x.rs", &src, "no-panic-hot-path").is_empty());
    }

    // --- safety-comments ---------------------------------------------------

    #[test]
    fn flags_undocumented_unsafe() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let f = findings("crates/ml/src/x.rs", src, "safety-comments");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_directly_above_covers() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(findings("crates/ml/src/x.rs", src, "safety-comments").is_empty());
    }

    #[test]
    fn multi_line_safety_block_covers() {
        let src = "// SAFETY: the pointer is derived from a live &mut and\n// the range is within bounds.\nunsafe impl Send for P {}\n";
        assert!(findings("crates/ml/src/x.rs", src, "safety-comments").is_empty());
    }

    #[test]
    fn unrelated_comment_does_not_cover() {
        let src = "// fast path\nunsafe impl Send for P {}\n";
        assert_eq!(
            findings("crates/ml/src/x.rs", src, "safety-comments").len(),
            1
        );
    }

    #[test]
    fn test_code_is_skipped_by_all_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let m = HashMap::new();\n        for v in m.values() {}\n        let x = 1.0f64.partial_cmp(&2.0).unwrap();\n        let t = Instant::now();\n    }\n}\n";
        for rule in RULES {
            assert!(
                findings("crates/sim/src/x.rs", src, rule).is_empty(),
                "rule {rule} leaked into test code"
            );
        }
    }
}
