//! The time-to-recover metric for drift scenarios.
//!
//! When a workload drifts mid-run (see
//! [`DriftSpec`](sizey_workflows::DriftSpec)), a sizing method's wastage
//! spikes: its models keep predicting the old regime, tasks fail out of
//! memory, retries double allocations, and offsets widen. A good drift
//! response brings the method back to its pre-drift efficiency quickly. The
//! [`RecoveryTracker`] measures exactly that from the attempt-event stream:
//!
//! * **pre-drift level** — the mean *normalised* wastage per attempt over
//!   every attempt whose submission sequence precedes the changepoint.
//!   Wastage is normalised by the attempt's true-peak cost
//!   (`wastage_gbh / (true_peak_gb * duration_h)`), so the level is
//!   scale-free: a regime that doubles every peak does not move the
//!   recovered baseline, only genuine over-allocation and failures do.
//! * **recovery** — the first post-changepoint attempt at which the rolling
//!   mean of the last [`window`](RecoveryTracker::new) normalised wastages
//!   re-enters the band `pre_level * (1 + band)`. The reported
//!   time-to-recover is that attempt's virtual submit time minus the first
//!   post-changepoint submit time, in simulated seconds.
//! * a method that never re-enters the band reports
//!   [`f64::INFINITY`] — "did not recover".
//!
//! The tracker is an [`AttemptSink`], so it rides along any replay for free
//! and keys the pre/post split on the instance *sequence* (not on wall
//! time), matching how [`DriftSpec`](sizey_workflows::DriftSpec) injects
//! the changepoint.

use sizey_sim::{AttemptEvent, AttemptSink};
use std::collections::VecDeque;

/// Default rolling window (attempts) of the recovery detector.
pub const RECOVERY_WINDOW: usize = 25;

/// Default tolerance band around the pre-drift wastage level.
pub const RECOVERY_BAND: f64 = 0.25;

/// Streaming time-to-recover tracker. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct RecoveryTracker {
    changepoint: u64,
    band: f64,
    window: usize,
    pre_total: f64,
    pre_count: u64,
    first_post_time: Option<f64>,
    recent: VecDeque<f64>,
    recovered_at: Option<f64>,
}

/// Normalised wastage of one attempt: GBh wasted per GBh of true-peak cost.
/// A perfectly sized successful attempt scores 0; a failed attempt scores
/// its full allocation cost relative to the peak cost (everything a failed
/// attempt consumed is waste, and the retries that follow add their own
/// events on top).
fn normalised_wastage(event: &AttemptEvent) -> f64 {
    let peak_cost_gbh = (event.true_peak_bytes / 1e9) * (event.duration_seconds / 3600.0);
    if peak_cost_gbh > 0.0 {
        (event.wastage_gbh / peak_cost_gbh).max(0.0)
    } else {
        0.0
    }
}

impl RecoveryTracker {
    /// Creates a tracker for a drift at `changepoint` (submission-sequence
    /// index), with a rolling `window` of attempts and a relative tolerance
    /// `band` around the pre-drift level. `window` is clamped to at least 1.
    pub fn new(changepoint: u64, window: usize, band: f64) -> Self {
        RecoveryTracker {
            changepoint,
            band,
            window: window.max(1),
            pre_total: 0.0,
            pre_count: 0,
            first_post_time: None,
            recent: VecDeque::new(),
            recovered_at: None,
        }
    }

    /// A tracker with the default window and band.
    pub fn with_defaults(changepoint: u64) -> Self {
        RecoveryTracker::new(changepoint, RECOVERY_WINDOW, RECOVERY_BAND)
    }

    /// Mean normalised wastage per attempt before the changepoint, or `None`
    /// when no pre-drift attempt was seen.
    pub fn pre_drift_level(&self) -> Option<f64> {
        (self.pre_count > 0).then(|| self.pre_total / self.pre_count as f64)
    }

    /// Virtual seconds from the first post-changepoint submission until the
    /// rolling wastage re-entered the pre-drift band; [`f64::INFINITY`] when
    /// it never did (or when the replay never reached the changepoint).
    pub fn time_to_recover_seconds(&self) -> f64 {
        match (self.recovered_at, self.first_post_time) {
            (Some(recovered), Some(start)) => (recovered - start).max(0.0),
            _ => f64::INFINITY,
        }
    }
}

impl AttemptSink for RecoveryTracker {
    fn record(&mut self, event: &AttemptEvent) {
        let score = normalised_wastage(event);
        if event.sequence < self.changepoint {
            self.pre_total += score;
            self.pre_count += 1;
            return;
        }
        if self.first_post_time.is_none() {
            self.first_post_time = Some(event.submit_time_seconds);
        }
        if self.recovered_at.is_some() {
            return;
        }
        self.recent.push_back(score);
        if self.recent.len() > self.window {
            self.recent.pop_front();
        }
        if self.recent.len() < self.window {
            return;
        }
        // No pre-drift attempts (changepoint 0) degenerates to "the first
        // full window counts as recovered": there is no baseline to beat.
        let pre_level = self.pre_drift_level().unwrap_or(f64::INFINITY);
        let rolling = self.recent.iter().sum::<f64>() / self.window as f64;
        if rolling <= pre_level * (1.0 + self.band) {
            self.recovered_at = Some(event.submit_time_seconds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sizey_provenance::TaskTypeId;

    fn event(sequence: u64, time: f64, allocated: f64, peak: f64, success: bool) -> AttemptEvent {
        let duration = 60.0;
        let wasted = if success {
            (allocated - peak).max(0.0)
        } else {
            allocated
        };
        AttemptEvent {
            task_type: TaskTypeId::new("t"),
            sequence,
            attempt: 0,
            allocated_bytes: allocated,
            true_peak_bytes: peak,
            duration_seconds: duration,
            success,
            wastage_gbh: (wasted / 1e9) * (duration / 3600.0),
            raw_estimate_bytes: None,
            selected_model: None,
            submit_time_seconds: time,
            queue_delay_seconds: 0.0,
        }
    }

    #[test]
    fn recovers_once_rolling_wastage_reenters_the_band() {
        let mut tracker = RecoveryTracker::new(10, 4, 0.25);
        // Pre-drift: 20 % over-allocation -> level 0.2.
        for i in 0..10u64 {
            tracker.record(&event(i, i as f64 * 10.0, 1.2e9, 1e9, true));
        }
        assert!((tracker.pre_drift_level().unwrap() - 0.2).abs() < 1e-12);
        // Drift hits at sequence 10: failures and gross over-allocation.
        for i in 10..16u64 {
            tracker.record(&event(i, i as f64 * 10.0, 2e9, 4e9, false));
        }
        assert!(tracker.time_to_recover_seconds().is_infinite());
        // The method adapts: back to ~20 % over-allocation on the new peaks.
        for i in 16..24u64 {
            tracker.record(&event(i, i as f64 * 10.0, 4.8e9, 4e9, true));
        }
        let ttr = tracker.time_to_recover_seconds();
        assert!(ttr.is_finite());
        // First post-drift submit at t=100; the window (4) of clean attempts
        // completes at sequence 19, t=190.
        assert!((ttr - 90.0).abs() < 1e-9, "ttr = {ttr}");
    }

    #[test]
    fn never_recovering_reports_infinity() {
        let mut tracker = RecoveryTracker::new(5, 3, 0.25);
        for i in 0..5u64 {
            tracker.record(&event(i, i as f64, 1.1e9, 1e9, true));
        }
        for i in 5..50u64 {
            // Permanently doubled relative wastage.
            tracker.record(&event(i, i as f64, 3e9, 1e9, true));
        }
        assert!(tracker.time_to_recover_seconds().is_infinite());
    }

    #[test]
    fn normalisation_makes_the_level_scale_free() {
        // Same 20 % over-allocation at 10x the peak: identical level, so a
        // method that adapts perfectly to bigger peaks recovers.
        let mut tracker = RecoveryTracker::new(4, 2, 0.1);
        for i in 0..4u64 {
            tracker.record(&event(i, i as f64, 1.2e9, 1e9, true));
        }
        for i in 4..8u64 {
            tracker.record(&event(i, i as f64, 12e9, 10e9, true));
        }
        assert!(tracker.time_to_recover_seconds().is_finite());
    }

    #[test]
    fn a_replay_that_never_reaches_the_changepoint_is_unrecovered() {
        let mut tracker = RecoveryTracker::new(100, 3, 0.25);
        for i in 0..10u64 {
            tracker.record(&event(i, i as f64, 1.2e9, 1e9, true));
        }
        assert!(tracker.time_to_recover_seconds().is_infinite());
    }
}
