//! Explore the RAQ α parameter (Eq. 3): α = 0 weights only the accuracy
//! score, α = 1 weights only the efficiency score that punishes outlying
//! overestimates. The paper (Fig. 10) finds no universally best value — this
//! example reproduces that analysis for one workflow.
//!
//! Run with `cargo run --release --example alpha_tuning [workflow]`.

use sizey_suite::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workflow = args.get(1).map(String::as_str).unwrap_or("rnaseq");
    let Some(spec) = sizey_workflows::workflow_by_name(workflow) else {
        eprintln!("unknown workflow {workflow:?}");
        std::process::exit(1);
    };

    let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.15, 7));
    let sim = SimulationConfig::default();
    println!(
        "alpha sweep on {} ({} instances)\n",
        spec.name,
        instances.len()
    );
    println!(
        "{:>6} {:>14} {:>10} {:>12}",
        "alpha", "wastage GBh", "failures", "runtime h"
    );

    let mut best = (f64::NAN, f64::INFINITY);
    for step in 0..=10 {
        let alpha = step as f64 / 10.0;
        let mut sizey = MethodSpec::Sizey(SizeyConfig::default().with_alpha(alpha)).build();
        let report = replay_workflow(&spec.name, &instances, sizey.as_mut(), &sim);
        let wastage = report.total_wastage_gbh();
        println!(
            "{alpha:>6.1} {wastage:>14.2} {:>10} {:>12.2}",
            report.total_failures(),
            report.total_runtime_hours()
        );
        if wastage < best.1 {
            best = (alpha, wastage);
        }
    }
    println!(
        "\nLowest wastage at alpha = {:.1} ({:.2} GBh) for this workload — the paper finds the",
        best.0, best.1
    );
    println!("best alpha is task-dependent (Fig. 10), so the default stays at 0.0.");
}
