//! Golden fixture: a hand-computed 3-task replay pinning the exact
//! accounting numbers (GB·h wastage, failure counts, makespan, queue
//! delays). Every quantity below is derived by hand in the comments; if a
//! refactor of the replay engine, the scheduler or the accounting shifts any
//! Fig. 8 aggregate — even by a rounding mode — this test fails.

use sizey_provenance::TaskTypeId;
use sizey_sim::{replay_workflow, PresetPredictor, SimulationConfig};
use sizey_workflows::TaskInstance;

fn instance(seq: u64, name: &str, peak: f64, runtime: f64, preset: f64) -> TaskInstance {
    TaskInstance {
        workflow: "golden".into(),
        task_type: TaskTypeId::new(name),
        machine: sizey_provenance::MachineId::new("m"),
        sequence: seq,
        input_bytes: 1e9,
        true_peak_bytes: peak,
        base_runtime_seconds: runtime,
        preset_memory_bytes: preset,
        cpu_utilization_pct: 100.0,
        io_read_bytes: 1e9,
        io_write_bytes: 1e9,
    }
}

/// The fixture, replayed with the preset predictor (allocate the preset,
/// double on failure) on the default 8 × 128 GB cluster with ttf = 1.0:
///
/// * Task A — peak 2 GB, preset 4 GB, 1 h. Succeeds first try.
///   Wastage: (4 − 2) GB × 1 h = **2 GBh**. Runs 0 → 3600 s.
/// * Task B — peak 6 GB, preset 4 GB, 1 h. Attempt 0 allocates 4 GB and
///   fails after the full hour (ttf 1.0), wasting the whole allocation:
///   4 GB × 1 h = **4 GBh**. The retry doubles to 8 GB, succeeds, wasting
///   (8 − 6) GB × 1 h = **2 GBh**. Attempt 0 runs 0 → 3600; the retry is
///   submitted at 3600 and runs 3600 → 7200.
/// * Task C — peak 1 GB, preset 1 GB, 0.5 h. Succeeds exactly, **0 GBh**.
///   Submitted at time 0; B's retry re-enters the queue with its original
///   priority and does not raise the FIFO floor, and the cluster has ample
///   capacity, so C starts at 0 with no queue delay and runs 0 → 1800.
///
/// Totals: wastage 2 + 4 + 2 + 0 = **8 GBh**, failures **1**, 4 attempt
/// events, makespan **7200 s** (B's retry ends last), zero queue delay,
/// total runtime 1 + 1 + 1 + 0.5 = **3.5 h**.
#[test]
fn golden_three_task_replay_matches_hand_computation() {
    let instances = vec![
        instance(0, "a", 2e9, 3600.0, 4e9),
        instance(1, "b", 6e9, 3600.0, 4e9),
        instance(2, "c", 1e9, 1800.0, 1e9),
    ];
    let mut p = PresetPredictor;
    let report = replay_workflow("golden", &instances, &mut p, &SimulationConfig::default());

    assert_eq!(report.events.len(), 4);
    assert_eq!(report.total_failures(), 1);
    assert_eq!(report.unfinished_instances, 0);
    assert_eq!(report.finished_instances(), 3);

    assert!(
        (report.total_wastage_gbh() - 8.0).abs() < 1e-12,
        "total wastage drifted: {}",
        report.total_wastage_gbh()
    );
    assert!((report.total_runtime_hours() - 3.5).abs() < 1e-12);
    assert!((report.makespan_seconds - 7200.0).abs() < 1e-9);
    assert!(report.total_queue_delay_seconds().abs() < 1e-9);

    // Per-attempt wastage, in decision order.
    let wastage: Vec<f64> = report.events.iter().map(|e| e.wastage_gbh).collect();
    assert!((wastage[0] - 2.0).abs() < 1e-12, "A success: {wastage:?}");
    assert!((wastage[1] - 4.0).abs() < 1e-12, "B failure: {wastage:?}");
    assert!((wastage[2] - 2.0).abs() < 1e-12, "B retry: {wastage:?}");
    assert!((wastage[3] - 0.0).abs() < 1e-12, "C exact: {wastage:?}");

    // Failure distribution per task type (Fig. 8c shape).
    let failures = report.failures_by_task_type();
    assert_eq!(failures.get(&TaskTypeId::new("b")), Some(&1));
    assert_eq!(failures.get(&TaskTypeId::new("a")), None);
    assert_eq!(failures.get(&TaskTypeId::new("c")), None);

    // Wastage per task type.
    let by_type = report.wastage_by_task_type();
    assert!((by_type[&TaskTypeId::new("a")] - 2.0).abs() < 1e-12);
    assert!((by_type[&TaskTypeId::new("b")] - 6.0).abs() < 1e-12);
    assert!((by_type[&TaskTypeId::new("c")] - 0.0).abs() < 1e-12);

    // Timing: B's retry starts when its failed attempt ends; C is not
    // blocked by the requeued retry and starts immediately.
    assert_eq!(report.events[1].submit_time_seconds, 0.0);
    assert_eq!(report.events[2].submit_time_seconds, 3600.0);
    assert_eq!(report.events[2].queue_delay_seconds, 0.0);
    assert_eq!(report.events[3].submit_time_seconds, 0.0);
    assert_eq!(report.events[3].queue_delay_seconds, 0.0);
}

/// The same fixture with ttf = 0.5: only B's failed attempt changes — it now
/// costs half an hour (4 GB × 0.5 h = 2 GBh) and the retry starts at 1800.
/// Totals: wastage 2 + 2 + 2 + 0 = 6 GBh, makespan B-retry 1800 → 5400 s.
#[test]
fn golden_replay_with_half_time_to_failure() {
    let instances = vec![
        instance(0, "a", 2e9, 3600.0, 4e9),
        instance(1, "b", 6e9, 3600.0, 4e9),
        instance(2, "c", 1e9, 1800.0, 1e9),
    ];
    let mut p = PresetPredictor;
    let config = SimulationConfig::default().with_time_to_failure(0.5);
    let report = replay_workflow("golden", &instances, &mut p, &config);

    assert_eq!(report.total_failures(), 1);
    assert!((report.total_wastage_gbh() - 6.0).abs() < 1e-12);
    assert!((report.total_runtime_hours() - 3.0).abs() < 1e-12);
    // A runs 0→3600; B fails 0→1800, retries 1800→5400; C runs 0→1800.
    // Makespan: 5400 s, no queueing.
    assert!((report.makespan_seconds - 5400.0).abs() < 1e-9);
    assert!(report.total_queue_delay_seconds().abs() < 1e-9);
}
