//! The parallel experiment sweep runner.
//!
//! The paper's evaluation is a cartesian product: workflows × sizing methods
//! (× seeds × scheduling policies, now that the simulator has a real
//! scheduler). Each cell of that product is an independent replay, so the
//! sweep fans the cells out across the [`sizey_ml::parallel`] thread pool
//! and collects one flat table — replacing the serial per-bin loops that
//! used to walk the product one replay at a time.
//!
//! Methods are described by [`MethodSpec`]s (the config-driven registry),
//! not names: a sweep over two differently configured Sizey variants is as
//! natural as the paper's six-method comparison, and every cell can hand
//! back the trained predictor's [`PredictorState`] for the checkpoint
//! directory of the spec-driven `experiment` binary.

use crate::recovery::RecoveryTracker;
use crate::registry::MethodSpec;
use crate::HarnessSettings;
use sizey_core::{
    AdmissionPolicy, AsyncSizey, AsyncSizeyHandle, ServiceConfig, SharedSizey, SizeyConfig,
};
use sizey_ml::parallel::{default_parallelism, parallel_map};
use sizey_provenance::TaskRecord;
use sizey_sim::{
    replay_workflow_streaming, schedule_workflows_streaming, AttemptContext, AttemptEvent,
    AttemptSink, CheckpointPredictor, MemoryPredictor, NullRecordSink, NullSink, Prediction,
    PredictorState, SchedulePolicy, SimulationConfig, StreamingTenant, TaskSubmission,
};
use sizey_workflows::{stream_workflow, workflow_by_name, DriftSpec, GeneratorConfig};
use std::sync::{Arc, Mutex};

/// One cartesian sweep over workflows × methods × seeds × policies.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Workflow names to replay (must exist in
    /// [`sizey_workflows::WORKFLOW_NAMES`]).
    pub workflows: Vec<String>,
    /// Sizing methods to compare.
    pub methods: Vec<MethodSpec>,
    /// Workload-generation seeds; every seed yields an independent workload.
    pub seeds: Vec<u64>,
    /// Scheduling policies to compare.
    pub policies: Vec<SchedulePolicy>,
    /// Fraction of the paper's task volume to generate per workload.
    pub scale: f64,
    /// Optional mid-run workload drift applied to every generated workload;
    /// when set, each cell also tracks the [`time_to_recover`](RecoveryTracker)
    /// metric around the drift changepoint.
    pub drift: Option<DriftSpec>,
    /// Base simulation configuration; the policy field is overridden per
    /// cell.
    pub sim: SimulationConfig,
}

impl SweepSpec {
    /// The full evaluation sweep: all six workflows, every method, one seed,
    /// every scheduling policy, at the harness scale.
    pub fn full(settings: &HarnessSettings, sim: SimulationConfig) -> Self {
        SweepSpec {
            workflows: sizey_workflows::WORKFLOW_NAMES
                .iter()
                .map(|s| s.to_string())
                .collect(),
            methods: MethodSpec::default_suite(),
            seeds: vec![settings.seed],
            policies: SchedulePolicy::ALL.to_vec(),
            scale: settings.scale,
            drift: None,
            sim,
        }
    }

    /// Number of cells in the cartesian product.
    pub fn len(&self) -> usize {
        self.workflows.len() * self.methods.len() * self.seeds.len() * self.policies.len()
    }

    /// True when the product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of one sweep cell: one workflow replayed with one method under one
/// policy and seed.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Workflow name.
    pub workflow: String,
    /// Sizing method.
    pub method: MethodSpec,
    /// Workload seed.
    pub seed: u64,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
    /// Total memory wastage in GBh.
    pub wastage_gbh: f64,
    /// Number of failed attempts.
    pub failures: usize,
    /// Instances that never finished.
    pub unfinished: usize,
    /// Simulated makespan in hours.
    pub makespan_hours: f64,
    /// Mean queue delay per attempt in seconds.
    pub mean_queue_delay_seconds: f64,
    /// Total task runtime in hours.
    pub runtime_hours: f64,
    /// Seconds from the drift changepoint until the method's rolling wastage
    /// re-entered its pre-drift band ([`f64::INFINITY`] = never recovered).
    /// `None` when the sweep has no [`SweepSpec::drift`] axis.
    pub time_to_recover_seconds: Option<f64>,
    /// Attempts requeued by injected faults without consuming retry budget.
    /// Cluster-wide (not per-tenant) in the shared/async service modes.
    pub requeued_attempts: usize,
    /// Retry-ledger entries still marked in flight at the end of the replay;
    /// must stay 0 even when faults strand attempts mid-run. Cluster-wide in
    /// the shared/async service modes.
    pub leaked_inflight_retries: usize,
}

/// Forwards attempt events to a [`RecoveryTracker`] when the sweep has a
/// drift axis, and is a null sink otherwise.
struct TrackerSink<'a>(Option<&'a mut RecoveryTracker>);

impl AttemptSink for TrackerSink<'_> {
    fn record(&mut self, event: &AttemptEvent) {
        if let Some(tracker) = self.0.as_mut() {
            tracker.record(event);
        }
    }
}

/// Shares one cell's checkpoint predictor with the multi-tenant engine.
/// Fault injection lives only in the event-driven engines (the synchronous
/// replay core has no virtual clock to crash against), so a faulted cell
/// runs its workflow as the sole tenant of [`schedule_workflows_streaming`];
/// the tenant consumes its predictor box, so the cell keeps the real one
/// behind this handle and unwraps it after the run for checkpointing.
struct SharedCellPredictor(Arc<Mutex<Box<dyn CheckpointPredictor>>>);

impl MemoryPredictor for SharedCellPredictor {
    fn name(&self) -> String {
        self.0.lock().expect("cell predictor lock").name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        self.0
            .lock()
            .expect("cell predictor lock")
            .predict(task, ctx)
    }

    fn observe(&mut self, record: &TaskRecord) {
        self.0.lock().expect("cell predictor lock").observe(record)
    }
}

/// Replays one sweep cell and returns its result row plus the trained
/// predictor (for checkpointing).
fn run_cell(
    spec: &SweepSpec,
    workflow: &str,
    method: &MethodSpec,
    seed: u64,
    policy: SchedulePolicy,
) -> (SweepCell, Box<dyn CheckpointPredictor>) {
    let wf_spec = workflow_by_name(workflow).expect("sweep names a known workflow");
    let sim = spec.sim.clone().with_policy(policy);
    let generator = GeneratorConfig {
        scale: spec.scale,
        seed,
        drift: spec.drift,
        ..GeneratorConfig::default()
    };
    let mut tracker = spec
        .drift
        .map(|drift| RecoveryTracker::with_defaults(drift.changepoint));
    let mut sink = TrackerSink(tracker.as_mut());
    let faulted = sim.faults.as_ref().is_some_and(|plan| !plan.is_empty());
    let (aggregates, requeued, leaked, predictor) = if faulted || spec.drift.is_some() {
        // Faults need the event-driven engine (the synchronous replay core
        // has no virtual clock to crash against), and drift cells need its
        // submission cadence — the sync core submits every first attempt at
        // t=0, which would collapse the time-to-recover axis to zero. Run
        // the workflow as the sole tenant and hand the shared predictor back
        // out afterwards.
        let shared: Arc<Mutex<Box<dyn CheckpointPredictor>>> = Arc::new(Mutex::new(method.build()));
        let tenant = StreamingTenant::new(
            workflow.to_string(),
            stream_workflow(&wf_spec, &generator),
            Box::new(SharedCellPredictor(Arc::clone(&shared))),
        );
        let result =
            schedule_workflows_streaming(vec![tenant], &sim, &mut sink, &mut NullRecordSink);
        let report = result
            .reports
            .into_iter()
            .next()
            .expect("one tenant, one report");
        let predictor = match Arc::try_unwrap(shared) {
            Ok(mutex) => mutex.into_inner().expect("cell predictor lock"),
            Err(_) => unreachable!("the engine dropped its tenants"),
        };
        (
            report.aggregates,
            result.stats.requeued_attempts,
            result.stats.leaked_inflight_retries,
            predictor,
        )
    } else {
        let mut predictor = method.build();
        // Streaming replay: instances are generated lazily and attempt events
        // fold into the aggregates online, so a cell's memory is bounded by
        // the in-flight working set — the differential suite pins the
        // aggregates bit-identical to the former materialised report.
        let aggregates = replay_workflow_streaming(
            workflow,
            stream_workflow(&wf_spec, &generator),
            predictor.as_mut(),
            &sim,
            &mut sink,
        );
        (aggregates, 0, 0, predictor)
    };
    let cell = SweepCell {
        workflow: workflow.to_string(),
        method: method.clone(),
        seed,
        policy,
        wastage_gbh: aggregates.total_wastage_gbh,
        failures: aggregates.failures as usize,
        unfinished: aggregates.unfinished_instances,
        makespan_hours: aggregates.makespan_seconds / 3600.0,
        mean_queue_delay_seconds: aggregates.mean_queue_delay_seconds(),
        runtime_hours: aggregates.total_runtime_hours(),
        time_to_recover_seconds: tracker.map(|t| t.time_to_recover_seconds()),
        requeued_attempts: requeued,
        leaked_inflight_retries: leaked,
    };
    (cell, predictor)
}

fn product(spec: &SweepSpec) -> Vec<(String, MethodSpec, u64, SchedulePolicy)> {
    let mut cells = Vec::with_capacity(spec.len());
    for wf in &spec.workflows {
        for method in &spec.methods {
            for &seed in &spec.seeds {
                for &policy in &spec.policies {
                    cells.push((wf.clone(), method.clone(), seed, policy));
                }
            }
        }
    }
    cells
}

/// Runs the sweep, fanning the cells out across `threads` workers (use
/// [`default_parallelism`] when unsure). Results come back in cartesian
/// order: workflows-major, then methods, seeds, policies.
pub fn run_sweep_with_threads(spec: &SweepSpec, threads: usize) -> Vec<SweepCell> {
    parallel_map(&product(spec), threads, |(wf, method, seed, policy)| {
        run_cell(spec, wf, method, *seed, *policy).0
    })
}

/// Runs the sweep on the default thread pool.
pub fn run_sweep(spec: &SweepSpec) -> Vec<SweepCell> {
    run_sweep_with_threads(spec, default_parallelism())
}

/// Like [`run_sweep_with_threads`], but each cell also hands back the
/// trained predictor's checkpoint (see [`sizey_sim::lifecycle`]): the state
/// a later run restores through [`MethodSpec::restore`] to warm-start from
/// this cell's learned models.
pub fn run_sweep_with_states_and_threads(
    spec: &SweepSpec,
    threads: usize,
) -> Vec<(SweepCell, PredictorState)> {
    parallel_map(&product(spec), threads, |(wf, method, seed, policy)| {
        let (cell, predictor) = run_cell(spec, wf, method, *seed, *policy);
        let state = predictor.snapshot();
        (cell, state)
    })
}

/// [`run_sweep_with_states_and_threads`] on the default thread pool.
pub fn run_sweep_with_states(spec: &SweepSpec) -> Vec<(SweepCell, PredictorState)> {
    run_sweep_with_states_and_threads(spec, default_parallelism())
}

/// The sweep's **shared-predictor mode**: instead of replaying every
/// (workflow, method) cell in isolation with a fresh predictor, each
/// (seed, policy) cell replays *all* of the spec's workflows concurrently as
/// tenants of one shared cluster ([`schedule_workflows_streaming`]), every tenant
/// sized by clones of **one** concurrent sharded Sizey service — the
/// deployment model of a cluster-wide prediction service, where tenant A's
/// completions train the models tenant B predicts from.
///
/// `spec.methods` is ignored (the shared service is always Sizey with the
/// default configuration); one [`SweepCell`] per workflow is emitted per
/// (seed, policy), in seed-major then policy then workflow order. The
/// (seed, policy) cells fan out across `threads` workers; within a cell the
/// event-driven replay is sequential, so results are deterministic
/// regardless of the thread count.
pub fn run_sweep_shared_sizey_with_threads(
    spec: &SweepSpec,
    shards: usize,
    threads: usize,
) -> Vec<SweepCell> {
    let mut cells: Vec<(u64, SchedulePolicy)> = Vec::new();
    for &seed in &spec.seeds {
        for &policy in &spec.policies {
            cells.push((seed, policy));
        }
    }
    let grouped = parallel_map(&cells, threads, |(seed, policy)| {
        let service = SharedSizey::sizey(SizeyConfig::default(), shards);
        let tenants: Vec<StreamingTenant> = spec
            .workflows
            .iter()
            .map(|wf| {
                let wf_spec = workflow_by_name(wf).expect("sweep names a known workflow");
                StreamingTenant::new(
                    wf.clone(),
                    stream_workflow(
                        &wf_spec,
                        &GeneratorConfig {
                            scale: spec.scale,
                            seed: *seed,
                            drift: spec.drift,
                            ..GeneratorConfig::default()
                        },
                    ),
                    Box::new(service.clone()),
                )
            })
            .collect();
        let sim = spec.sim.clone().with_policy(*policy);
        let result =
            schedule_workflows_streaming(tenants, &sim, &mut NullSink, &mut NullRecordSink);
        result
            .reports
            .iter()
            .map(|report| SweepCell {
                workflow: report.workflow.clone(),
                method: MethodSpec::sizey_defaults(),
                seed: *seed,
                policy: *policy,
                wastage_gbh: report.aggregates.total_wastage_gbh,
                failures: report.aggregates.failures as usize,
                unfinished: report.aggregates.unfinished_instances,
                makespan_hours: report.aggregates.makespan_seconds / 3600.0,
                mean_queue_delay_seconds: report.aggregates.mean_queue_delay_seconds(),
                runtime_hours: report.aggregates.total_runtime_hours(),
                time_to_recover_seconds: None,
                requeued_attempts: result.stats.requeued_attempts,
                leaked_inflight_retries: result.stats.leaked_inflight_retries,
            })
            .collect::<Vec<_>>()
    });
    grouped.into_iter().flatten().collect()
}

/// [`run_sweep_shared_sizey_with_threads`] on the default thread pool.
pub fn run_sweep_shared_sizey(spec: &SweepSpec, shards: usize) -> Vec<SweepCell> {
    run_sweep_shared_sizey_with_threads(spec, shards, default_parallelism())
}

/// A replay tenant over the async serving front-end that flushes after every
/// observe: the simulator's online-learning contract (an observe is visible
/// to the next predict) holds exactly, so replay results are deterministic
/// and bit-identical to the locked [`SharedSizey`] path — the drop-in proof
/// for [`run_sweep_async_sizey`]. A deployment would skip the per-observe
/// flush and accept snapshot staleness of one micro-batch.
struct SyncedAsyncTenant {
    handle: AsyncSizeyHandle,
}

impl MemoryPredictor for SyncedAsyncTenant {
    fn name(&self) -> String {
        self.handle.name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        // The lock-free snapshot path — what the service would serve live.
        self.handle.service().predict(task, ctx)
    }

    fn observe(&mut self, record: &TaskRecord) {
        let service = self.handle.service();
        service.observe(record);
        service.flush();
    }
}

/// The sweep's **async-service mode**: like [`run_sweep_shared_sizey`], but
/// every tenant shares one [`AsyncSizey`] front-end — observes go through
/// the per-shard request queues and micro-batchers, predictions come off the
/// lock-free snapshots. Tenants flush after each observe (an internal
/// `SyncedAsyncTenant` adapter), so each cell's replay stays deterministic and the
/// emitted cells are bit-identical to the shared-Sizey sweep — pinned by the
/// crate's tests; this mode exists to prove the async front-end is a
/// drop-in, not to benchmark it (that is `serve_bench`'s job).
pub fn run_sweep_async_sizey_with_threads(
    spec: &SweepSpec,
    shards: usize,
    threads: usize,
) -> Vec<SweepCell> {
    let mut cells: Vec<(u64, SchedulePolicy)> = Vec::new();
    for &seed in &spec.seeds {
        for &policy in &spec.policies {
            cells.push((seed, policy));
        }
    }
    let grouped = parallel_map(&cells, threads, |(seed, policy)| {
        // A zero-length batch window: the replay flushes after every
        // observe, so there are no stragglers to wait for.
        let config = ServiceConfig {
            batch_window: std::time::Duration::ZERO,
            admission: AdmissionPolicy::Block,
            ..ServiceConfig::default()
        };
        let handle = AsyncSizey::sizey(SizeyConfig::default(), shards, config).into_handle();
        let tenants: Vec<StreamingTenant> = spec
            .workflows
            .iter()
            .map(|wf| {
                let wf_spec = workflow_by_name(wf).expect("sweep names a known workflow");
                StreamingTenant::new(
                    wf.clone(),
                    stream_workflow(
                        &wf_spec,
                        &GeneratorConfig {
                            scale: spec.scale,
                            seed: *seed,
                            drift: spec.drift,
                            ..GeneratorConfig::default()
                        },
                    ),
                    Box::new(SyncedAsyncTenant {
                        handle: handle.clone(),
                    }),
                )
            })
            .collect();
        let sim = spec.sim.clone().with_policy(*policy);
        let result =
            schedule_workflows_streaming(tenants, &sim, &mut NullSink, &mut NullRecordSink);
        result
            .reports
            .iter()
            .map(|report| SweepCell {
                workflow: report.workflow.clone(),
                method: MethodSpec::sizey_defaults(),
                seed: *seed,
                policy: *policy,
                wastage_gbh: report.aggregates.total_wastage_gbh,
                failures: report.aggregates.failures as usize,
                unfinished: report.aggregates.unfinished_instances,
                makespan_hours: report.aggregates.makespan_seconds / 3600.0,
                mean_queue_delay_seconds: report.aggregates.mean_queue_delay_seconds(),
                runtime_hours: report.aggregates.total_runtime_hours(),
                time_to_recover_seconds: None,
                requeued_attempts: result.stats.requeued_attempts,
                leaked_inflight_retries: result.stats.leaked_inflight_retries,
            })
            .collect::<Vec<_>>()
    });
    grouped.into_iter().flatten().collect()
}

/// [`run_sweep_async_sizey_with_threads`] on the default thread pool.
pub fn run_sweep_async_sizey(spec: &SweepSpec, shards: usize) -> Vec<SweepCell> {
    run_sweep_async_sizey_with_threads(spec, shards, default_parallelism())
}

/// One aggregated row of a sweep: a (method, policy) pair summed over
/// workflows and averaged over seeds.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Sizing method.
    pub method: MethodSpec,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
    /// Mean (over seeds) of the total wastage across workflows, GBh.
    pub wastage_gbh: f64,
    /// Mean total failures.
    pub failures: f64,
    /// Mean of the summed per-workflow makespans, hours.
    pub makespan_hours: f64,
    /// Mean queue delay per attempt, seconds (averaged over cells).
    pub mean_queue_delay_seconds: f64,
}

/// Aggregates sweep cells into one row per (method, policy).
///
/// The rows come back in a **deterministic order** regardless of the cell
/// order: methods sort by [`MethodSpec::sort_key`] (the paper's figure
/// order, parameterisation as tiebreak) and policies by their position in
/// [`SchedulePolicy::ALL`] — so sweep tables diff cleanly across runs and
/// thread counts.
pub fn aggregate_sweep(cells: &[SweepCell]) -> Vec<SweepRow> {
    let mut order: Vec<(MethodSpec, SchedulePolicy)> = Vec::new();
    for cell in cells {
        if !order.contains(&(cell.method.clone(), cell.policy)) {
            order.push((cell.method.clone(), cell.policy));
        }
    }
    order.sort_by(|(method_a, policy_a), (method_b, policy_b)| {
        method_a.sort_key().cmp(&method_b.sort_key()).then(
            policy_a
                .comparison_order()
                .cmp(&policy_b.comparison_order()),
        )
    });
    order
        .into_iter()
        .map(|(method, policy)| {
            let group: Vec<&SweepCell> = cells
                .iter()
                .filter(|c| c.method == method && c.policy == policy)
                .collect();
            let seeds: Vec<u64> = {
                let mut s: Vec<u64> = group.iter().map(|c| c.seed).collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let n_seeds = seeds.len().max(1) as f64;
            let n_cells = group.len().max(1) as f64;
            SweepRow {
                method,
                policy,
                wastage_gbh: group.iter().map(|c| c.wastage_gbh).sum::<f64>() / n_seeds,
                failures: group.iter().map(|c| c.failures as f64).sum::<f64>() / n_seeds,
                makespan_hours: group.iter().map(|c| c.makespan_hours).sum::<f64>() / n_seeds,
                mean_queue_delay_seconds: group
                    .iter()
                    .map(|c| c.mean_queue_delay_seconds)
                    .sum::<f64>()
                    / n_cells,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            workflows: vec!["iwd".to_string()],
            methods: vec![MethodSpec::Preset],
            seeds: vec![3, 4],
            policies: vec![SchedulePolicy::FirstFit, SchedulePolicy::BestFit],
            scale: 0.02,
            drift: None,
            sim: SimulationConfig::default(),
        }
    }

    #[test]
    fn sweep_produces_one_cell_per_product_entry() {
        let spec = tiny_spec();
        let cells = run_sweep(&spec);
        assert_eq!(cells.len(), spec.len());
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(|c| c.wastage_gbh >= 0.0));
        assert!(cells.iter().all(|c| c.unfinished == 0));
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let spec = tiny_spec();
        let serial = run_sweep_with_threads(&spec, 1);
        let parallel = run_sweep_with_threads(&spec, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.workflow, b.workflow);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.wastage_gbh, b.wastage_gbh);
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.makespan_hours, b.makespan_hours);
        }
    }

    #[test]
    fn sweep_states_checkpoint_each_cell_predictor() {
        let spec = SweepSpec {
            workflows: vec!["iwd".to_string()],
            methods: vec![MethodSpec::Preset, MethodSpec::sizey_defaults()],
            seeds: vec![3],
            policies: vec![SchedulePolicy::FirstFit],
            scale: 0.02,
            drift: None,
            sim: SimulationConfig::default(),
        };
        let with_states = run_sweep_with_states(&spec);
        assert_eq!(with_states.len(), 2);
        // The cells match the plain sweep bit for bit.
        let plain = run_sweep(&spec);
        for ((cell, _), reference) in with_states.iter().zip(&plain) {
            assert_eq!(cell.method, reference.method);
            assert_eq!(cell.wastage_gbh, reference.wastage_gbh);
        }
        // The preset predictor is stateless; the Sizey cell journals every
        // attempt of the replay and restores bit-identically.
        let (preset_cell, preset_state) = &with_states[0];
        assert_eq!(preset_cell.method, MethodSpec::Preset);
        assert!(preset_state.journal.is_empty());
        let (sizey_cell, sizey_state) = &with_states[1];
        assert!(!sizey_state.journal.is_empty());
        let restored = sizey_cell.method.restore(sizey_state).unwrap();
        assert_eq!(restored.snapshot(), *sizey_state);
    }

    #[test]
    fn shared_sizey_sweep_emits_one_cell_per_workflow_seed_policy() {
        let spec = SweepSpec {
            workflows: vec!["iwd".to_string(), "rnaseq".to_string()],
            methods: vec![],
            seeds: vec![3],
            policies: vec![SchedulePolicy::FirstFit, SchedulePolicy::Backfill],
            scale: 0.02,
            drift: None,
            sim: SimulationConfig::default(),
        };
        let cells = run_sweep_shared_sizey(&spec, 4);
        assert_eq!(cells.len(), 4, "2 workflows x 1 seed x 2 policies");
        assert!(cells
            .iter()
            .all(|c| c.method == MethodSpec::sizey_defaults()));
        assert!(cells.iter().all(|c| c.wastage_gbh.is_finite()));
        // Deterministic regardless of worker count: each (seed, policy)
        // cell's event-driven replay is sequential.
        let serial = run_sweep_shared_sizey_with_threads(&spec, 4, 1);
        for (a, b) in cells.iter().zip(&serial) {
            assert_eq!(a.workflow, b.workflow);
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.wastage_gbh, b.wastage_gbh);
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.makespan_hours, b.makespan_hours);
        }
    }

    /// The async front-end is a drop-in for the locked shared service: the
    /// same sweep through `SyncedAsyncTenant`s (snapshot predicts, queued
    /// observes, flush-per-observe) emits bit-identical cells.
    #[test]
    fn async_sizey_sweep_is_bit_identical_to_shared_sizey_sweep() {
        let spec = SweepSpec {
            workflows: vec!["iwd".to_string(), "rnaseq".to_string()],
            methods: vec![],
            seeds: vec![3],
            policies: vec![SchedulePolicy::FirstFit],
            scale: 0.02,
            drift: None,
            sim: SimulationConfig::default(),
        };
        let shared = run_sweep_shared_sizey(&spec, 4);
        let asynced = run_sweep_async_sizey(&spec, 4);
        assert_eq!(shared.len(), asynced.len());
        for (a, b) in shared.iter().zip(&asynced) {
            assert_eq!(a.workflow, b.workflow);
            assert_eq!(a.wastage_gbh, b.wastage_gbh, "{}", a.workflow);
            assert_eq!(a.failures, b.failures);
            assert_eq!(a.unfinished, b.unfinished);
            assert_eq!(a.makespan_hours, b.makespan_hours);
            assert_eq!(a.runtime_hours, b.runtime_hours);
        }
    }

    #[test]
    fn aggregate_groups_by_method_and_policy() {
        let spec = tiny_spec();
        let cells = run_sweep(&spec);
        let rows = aggregate_sweep(&cells);
        assert_eq!(rows.len(), 2, "one row per (method, policy)");
        for row in &rows {
            assert_eq!(row.method, MethodSpec::Preset);
            assert!(row.wastage_gbh > 0.0);
        }
    }

    /// Satellite regression: aggregate rows used to come back in
    /// first-encounter order, so reordering the cells (e.g. a different
    /// sweep nesting) reordered the table. The order is now pinned to
    /// (figure order, parameter tiebreak, policy order) regardless of the
    /// cell order.
    #[test]
    fn aggregate_order_is_deterministic_and_pinned() {
        fn cell(method: MethodSpec, policy: SchedulePolicy) -> SweepCell {
            SweepCell {
                workflow: "iwd".to_string(),
                method,
                seed: 1,
                policy,
                wastage_gbh: 1.0,
                failures: 0,
                unfinished: 0,
                makespan_hours: 1.0,
                mean_queue_delay_seconds: 0.0,
                runtime_hours: 1.0,
                time_to_recover_seconds: None,
                requeued_attempts: 0,
                leaked_inflight_retries: 0,
            }
        }
        let alpha_sizey = MethodSpec::Sizey(SizeyConfig::default().with_alpha(0.5));
        // Deliberately scrambled: presets before Sizey, best-fit before
        // first-fit, the non-default Sizey variant before the default.
        let cells = vec![
            cell(MethodSpec::Preset, SchedulePolicy::BestFit),
            cell(alpha_sizey.clone(), SchedulePolicy::FirstFit),
            cell(MethodSpec::Preset, SchedulePolicy::FirstFit),
            cell(MethodSpec::sizey_defaults(), SchedulePolicy::FirstFit),
            cell(
                MethodSpec::WittPercentile(Default::default()),
                SchedulePolicy::FirstFit,
            ),
        ];
        let rows = aggregate_sweep(&cells);
        let order: Vec<(String, &str)> = rows
            .iter()
            .map(|r| {
                (
                    format!(
                        "{}(α={})",
                        r.method.name(),
                        matches!(&r.method, MethodSpec::Sizey(c) if c.alpha > 0.0) as u8
                    ),
                    r.policy.name(),
                )
            })
            .collect();
        assert_eq!(
            order,
            vec![
                ("Sizey(α=0)".to_string(), "first-fit"),
                ("Sizey(α=1)".to_string(), "first-fit"),
                ("Witt-Percentile(α=0)".to_string(), "first-fit"),
                ("Workflow-Presets(α=0)".to_string(), "first-fit"),
                ("Workflow-Presets(α=0)".to_string(), "best-fit"),
            ]
        );
        // Reversing the cells must not change the row order.
        let mut reversed = cells;
        reversed.reverse();
        let rows_reversed = aggregate_sweep(&reversed);
        for (a, b) in rows.iter().zip(&rows_reversed) {
            assert_eq!(a.method, b.method);
            assert_eq!(a.policy, b.policy);
        }
    }
}
