//! Simulation parameters.

use crate::faults::FaultPlan;
use crate::scheduler::SchedulePolicy;
use sizey_workflows::profiles::{NODE_COUNT, NODE_MEMORY_BYTES};

/// One homogeneous group of nodes inside a (possibly heterogeneous) cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePoolSpec {
    /// Number of identical nodes in this pool.
    pub count: usize,
    /// Memory capacity of each node in bytes.
    pub memory_bytes: f64,
    /// Task slots (hardware threads) per node.
    pub slots: usize,
}

/// Parameters of an online replay, mirroring the knobs the paper's simulated
/// environment exposes (Section III-A), extended with the event-driven
/// scheduler's policy and cluster-shape knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Fraction of a task's runtime after which an under-provisioned task
    /// fails. `1.0` means the failure is only detected at the very end of the
    /// execution (worst case, Fig. 8a); `0.5` means tasks fail halfway
    /// (Fig. 8b).
    pub time_to_failure: f64,
    /// Maximum number of attempts per task instance before the simulator
    /// gives up (safety net; with doubling every method reaches the node
    /// limit well before this).
    pub max_attempts: u32,
    /// Memory capacity of a node in the default pool, in bytes. Allocations
    /// are clamped to the largest node of the cluster (assumption A3: strict
    /// limits, a task cannot be given more than a node has).
    pub node_memory_bytes: f64,
    /// Number of nodes in the default pool.
    pub node_count: usize,
    /// Number of hardware threads per node in the default pool.
    pub slots_per_node: usize,
    /// Additional heterogeneous node pools beyond the default one (e.g. a
    /// couple of big-memory nodes next to the standard fleet). Empty for the
    /// paper's homogeneous 8 × 128 GB cluster.
    pub extra_node_pools: Vec<NodePoolSpec>,
    /// Scheduling policy used by the event-driven scheduler.
    pub policy: SchedulePolicy,
    /// How many queued tasks behind the head of the pending queue the
    /// [`SchedulePolicy::Backfill`] policy may inspect when the head does not
    /// fit. Bounds the dispatch cost per completion event. Only the
    /// event-driven engine (`schedule_workflows`) maintains a materialised
    /// pending queue; the synchronous replay engine approximates backfill
    /// without a window (see [`SchedulePolicy::Backfill`]).
    pub backfill_window: usize,
    /// Simulated inter-arrival time between consecutive task submissions of
    /// one workflow, in seconds. The paper's replay submits everything
    /// upfront (0.0); multi-tenant experiments can use a positive value to
    /// spread arrivals.
    pub submit_interval_seconds: f64,
    /// Optional fault-injection scenario (node crashes, storms, spot-pool
    /// preemptions, task kills) driven by the engines' virtual clock. `None`
    /// — the default — is bit-identical to a plan that injects nothing.
    /// Honoured by the event-driven engines (`schedule_workflows` and
    /// `schedule_workflows_streaming`); the synchronous per-attempt replay
    /// engine has no virtual-clock event loop and ignores it.
    pub faults: Option<FaultPlan>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            time_to_failure: 1.0,
            max_attempts: 12,
            node_memory_bytes: NODE_MEMORY_BYTES,
            node_count: NODE_COUNT,
            slots_per_node: 32,
            extra_node_pools: Vec::new(),
            policy: SchedulePolicy::FirstFit,
            backfill_window: 64,
            submit_interval_seconds: 0.0,
            faults: None,
        }
    }
}

impl SimulationConfig {
    /// Returns a copy with a different time-to-failure value.
    pub fn with_time_to_failure(mut self, ttf: f64) -> Self {
        self.time_to_failure = ttf;
        self
    }

    /// Returns a copy with a different scheduling policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different default node pool (count × memory ×
    /// slots) — the quickest way to model a constrained cluster.
    pub fn with_nodes(mut self, count: usize, memory_bytes: f64, slots: usize) -> Self {
        self.node_count = count;
        self.node_memory_bytes = memory_bytes;
        self.slots_per_node = slots;
        self
    }

    /// Returns a copy with an additional heterogeneous node pool.
    pub fn with_extra_pool(mut self, pool: NodePoolSpec) -> Self {
        self.extra_node_pools.push(pool);
        self
    }

    /// Returns a copy with a fault-injection plan attached.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// A configuration with effectively unlimited capacity: one node with
    /// infinite memory and an unbounded slot count, so no task ever waits.
    /// This is the reference mode under which the event-driven scheduler and
    /// the legacy occupancy model must produce identical wastage.
    pub fn unbounded() -> Self {
        SimulationConfig {
            node_count: 1,
            node_memory_bytes: f64::INFINITY,
            slots_per_node: usize::MAX,
            ..SimulationConfig::default()
        }
    }

    /// All node pools of the cluster: the default pool followed by the extra
    /// heterogeneous pools (empty pools are skipped).
    pub fn node_pools(&self) -> Vec<NodePoolSpec> {
        let mut pools = Vec::with_capacity(1 + self.extra_node_pools.len());
        if self.node_count > 0 {
            pools.push(NodePoolSpec {
                count: self.node_count,
                memory_bytes: self.node_memory_bytes,
                slots: self.slots_per_node,
            });
        }
        pools.extend(
            self.extra_node_pools
                .iter()
                .copied()
                .filter(|p| p.count > 0),
        );
        pools
    }

    /// Memory capacity of the largest node in the cluster — the hard upper
    /// bound for any single allocation.
    pub fn largest_node_memory_bytes(&self) -> f64 {
        self.node_pools()
            .iter()
            .map(|p| p.memory_bytes)
            .fold(0.0, f64::max)
    }

    /// Total memory capacity of the cluster in bytes.
    pub fn cluster_memory_bytes(&self) -> f64 {
        self.node_pools()
            .iter()
            .map(|p| p.memory_bytes * p.count as f64)
            .sum()
    }

    /// Total task slots in the cluster.
    pub fn cluster_slots(&self) -> usize {
        self.node_pools()
            .iter()
            .map(|p| p.count.saturating_mul(p.slots))
            .fold(0usize, usize::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_evaluation_cluster() {
        let c = SimulationConfig::default();
        assert_eq!(c.node_count, 8);
        assert_eq!(c.node_memory_bytes, 128e9);
        assert_eq!(c.slots_per_node, 32);
        assert_eq!(c.time_to_failure, 1.0);
        assert_eq!(c.cluster_memory_bytes(), 1024e9);
        assert_eq!(c.cluster_slots(), 256);
        assert_eq!(c.policy, SchedulePolicy::FirstFit);
        assert!(c.extra_node_pools.is_empty());
    }

    #[test]
    fn with_time_to_failure_overrides_only_ttf() {
        let c = SimulationConfig::default().with_time_to_failure(0.5);
        assert_eq!(c.time_to_failure, 0.5);
        assert_eq!(c.node_count, 8);
    }

    #[test]
    fn extra_pools_extend_capacity_and_largest_node() {
        let c = SimulationConfig::default().with_extra_pool(NodePoolSpec {
            count: 2,
            memory_bytes: 512e9,
            slots: 64,
        });
        assert_eq!(c.node_pools().len(), 2);
        assert_eq!(c.largest_node_memory_bytes(), 512e9);
        assert_eq!(c.cluster_memory_bytes(), 1024e9 + 1024e9);
        assert_eq!(c.cluster_slots(), 256 + 128);
    }

    #[test]
    fn homogeneous_largest_node_is_the_default_pool() {
        let c = SimulationConfig::default();
        assert_eq!(c.largest_node_memory_bytes(), c.node_memory_bytes);
    }

    #[test]
    fn unbounded_config_never_limits_allocations() {
        let c = SimulationConfig::unbounded();
        assert_eq!(c.node_pools().len(), 1);
        assert!(c.largest_node_memory_bytes().is_infinite());
        assert!(c.cluster_slots() >= usize::MAX / 2);
    }

    #[test]
    fn empty_pools_are_skipped() {
        let c = SimulationConfig {
            node_count: 0,
            extra_node_pools: vec![NodePoolSpec {
                count: 0,
                memory_bytes: 1e9,
                slots: 1,
            }],
            ..SimulationConfig::default()
        };
        assert!(c.node_pools().is_empty());
        assert_eq!(c.largest_node_memory_bytes(), 0.0);
    }
}
