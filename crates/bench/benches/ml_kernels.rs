//! Criterion micro-benchmarks of the ML substrate: model fitting and
//! prediction cost for the four pool member classes at typical Sizey history
//! sizes (tens to hundreds of observations of a single feature).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sizey_ml::dataset::Dataset;
use sizey_ml::forest::{ForestConfig, RandomForestRegression};
use sizey_ml::knn::KnnRegression;
use sizey_ml::linear::LinearRegression;
use sizey_ml::mlp::{MlpConfig, MlpRegression};
use sizey_ml::model::Regressor;

fn dataset(n: usize) -> Dataset {
    let xs: Vec<f64> = (0..n).map(|i| 1e9 + i as f64 * 3e7).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 1.7 * x + 5e8 + ((x / 1e8).sin() * 1e8))
        .collect();
    Dataset::from_univariate(&xs, &ys)
}

fn models() -> Vec<(&'static str, Box<dyn Regressor>)> {
    vec![
        (
            "linear",
            Box::new(LinearRegression::with_defaults()) as Box<dyn Regressor>,
        ),
        ("knn", Box::new(KnnRegression::with_defaults())),
        (
            "mlp",
            Box::new(MlpRegression::new(MlpConfig {
                hidden_layers: vec![16],
                max_epochs: 120,
                ..MlpConfig::default()
            })),
        ),
        (
            "random_forest",
            Box::new(RandomForestRegression::new(ForestConfig {
                n_trees: 24,
                max_depth: 8,
                ..ForestConfig::default()
            })),
        ),
    ]
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_fit");
    group.sample_size(10);
    for &n in &[32usize, 128usize] {
        let data = dataset(n);
        for (name, model) in models() {
            group.bench_with_input(BenchmarkId::new(name, n), &data, |b, data| {
                b.iter_batched(
                    || model.clone_box(),
                    |mut m| {
                        m.fit(data).expect("fit");
                        m
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_predict");
    group.sample_size(20);
    let data = dataset(128);
    for (name, mut model) in models() {
        model.fit(&data).expect("fit");
        group.bench_function(name, |b| {
            b.iter(|| {
                model
                    .predict(std::hint::black_box(&[2.5e9]))
                    .expect("predict")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
