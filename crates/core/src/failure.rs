//! Failure handling (Section II-E, last paragraph).
//!
//! When a task fails despite the offset, Sizey allocates the maximum amount
//! of memory ever observed for this (task type, machine) combination; every
//! further attempt doubles the allocation until the machine's resources are
//! exhausted (the replay engine clamps to the node capacity).

/// Computes the allocation for retry `attempt` (≥ 1) of a failed task.
///
/// * `max_observed_bytes` — the largest peak (or exhausted allocation) ever
///   recorded for this task type on this machine, if any.
/// * `failed_allocation_bytes` — the allocation of the attempt that just
///   failed; the retry never allocates less than this.
pub fn failure_allocation(
    max_observed_bytes: Option<f64>,
    failed_allocation_bytes: f64,
    attempt: u32,
) -> f64 {
    debug_assert!(attempt >= 1, "failure handling starts at attempt 1");
    let base = max_observed_bytes
        .unwrap_or(failed_allocation_bytes)
        .max(failed_allocation_bytes);
    base * 2.0_f64.powi(attempt.saturating_sub(1) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_retry_uses_max_observed_when_larger() {
        assert_eq!(failure_allocation(Some(10e9), 4e9, 1), 10e9);
    }

    #[test]
    fn first_retry_never_shrinks_below_failed_allocation() {
        assert_eq!(failure_allocation(Some(2e9), 4e9, 1), 4e9);
        assert_eq!(failure_allocation(None, 4e9, 1), 4e9);
    }

    #[test]
    fn subsequent_retries_double() {
        assert_eq!(failure_allocation(Some(10e9), 4e9, 2), 20e9);
        assert_eq!(failure_allocation(Some(10e9), 4e9, 3), 40e9);
        assert_eq!(failure_allocation(None, 4e9, 4), 32e9);
    }
}
