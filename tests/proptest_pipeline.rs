//! Property-based integration tests: invariants of the replay pipeline that
//! must hold for any workload, seed and (sane) configuration.

use proptest::prelude::*;
use sizey_suite::prelude::*;

fn small_workload(name: &str, seed: u64) -> Vec<TaskInstance> {
    let spec = sizey_workflows::workflow_by_name(name).expect("known workflow");
    generate_workflow(
        &spec,
        &GeneratorConfig {
            scale: 0.01,
            seed,
            min_instances: 4,
            interleave: true,
            drift: None,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replay_conserves_instances_and_wastage_is_nonnegative(
        seed in 0u64..5000,
        wf_idx in 0usize..6,
    ) {
        let name = sizey_workflows::WORKFLOW_NAMES[wf_idx];
        let instances = small_workload(name, seed);
        let mut presets = PresetPredictor;
        let report = replay_workflow(name, &instances, &mut presets, &SimulationConfig::default());

        prop_assert_eq!(report.instances, instances.len());
        prop_assert!(report.total_wastage_gbh() >= 0.0);
        prop_assert!(report.total_runtime_hours() >= 0.0);
        // Number of first attempts equals the number of instances.
        let first_attempts = report.events.iter().filter(|e| e.attempt == 0).count();
        prop_assert_eq!(first_attempts, instances.len());
        // Per-event wastage is consistent with allocation, truth and duration.
        for e in &report.events {
            let expected = if e.success {
                (e.allocated_bytes - e.true_peak_bytes).max(0.0)
            } else {
                e.allocated_bytes
            } / 1e9 * e.duration_seconds / 3600.0;
            prop_assert!((e.wastage_gbh - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn sizey_replay_is_deterministic(seed in 0u64..2000) {
        let instances = small_workload("iwd", seed);
        let sim = SimulationConfig::default();
        let mut a = SizeyPredictor::with_defaults();
        let mut b = SizeyPredictor::with_defaults();
        let ra = replay_workflow("iwd", &instances, &mut a, &sim);
        let rb = replay_workflow("iwd", &instances, &mut b, &sim);
        prop_assert!((ra.total_wastage_gbh() - rb.total_wastage_gbh()).abs() < 1e-9);
        prop_assert_eq!(ra.total_failures(), rb.total_failures());
        prop_assert_eq!(ra.events.len(), rb.events.len());
    }

    #[test]
    fn failure_handling_escalation_is_monotone(
        max_observed in 1.0e9f64..100.0e9,
        failed_alloc in 1.0e9f64..100.0e9,
        attempt in 1u32..6,
    ) {
        let a = sizey_core::failure_allocation(Some(max_observed), failed_alloc, attempt);
        let b = sizey_core::failure_allocation(Some(max_observed), failed_alloc, attempt + 1);
        prop_assert!(a >= failed_alloc);
        prop_assert!(a >= max_observed.min(failed_alloc));
        prop_assert!(b > a);
    }

    #[test]
    fn clamped_failure_handling_respects_the_largest_node(
        max_observed in 1.0e9f64..200.0e9,
        failed_alloc in 1.0e9f64..200.0e9,
        attempt in 1u32..8,
        capacity in 64.0e9f64..256.0e9,
    ) {
        let a = sizey_core::failure_allocation_clamped(
            Some(max_observed), failed_alloc, attempt, capacity);
        let b = sizey_core::failure_allocation_clamped(
            Some(max_observed), failed_alloc, attempt + 1, capacity);
        prop_assert!(a <= capacity);
        prop_assert!(b <= capacity);
        prop_assert!(b >= a, "clamped escalation must stay monotone");
    }

    // With capacity out of the picture, the event-driven scheduler must not
    // change a single Sizey decision relative to the legacy occupancy model:
    // wastage is bit-identical under unbounded capacity.
    #[test]
    fn scheduler_replay_matches_occupancy_model_with_sizey(seed in 0u64..1000) {
        let instances = small_workload("iwd", seed);
        let config = SimulationConfig::unbounded();
        let mut a = SizeyPredictor::with_defaults();
        let mut b = SizeyPredictor::with_defaults();
        let scheduled = replay_workflow("iwd", &instances, &mut a, &config);
        let occupancy = replay_workflow_occupancy("iwd", &instances, &mut b, &config);
        prop_assert_eq!(scheduled.events.len(), occupancy.events.len());
        prop_assert_eq!(scheduled.total_wastage_gbh(), occupancy.total_wastage_gbh());
        prop_assert_eq!(scheduled.total_failures(), occupancy.total_failures());
        prop_assert_eq!(scheduled.unfinished_instances, occupancy.unfinished_instances);
    }

    #[test]
    fn raq_scores_stay_normalised(
        estimates in prop::collection::vec(1.0e6f64..200.0e9, 1..6),
        alpha in 0.0f64..1.0,
        history_len in 0usize..10,
    ) {
        let histories: Vec<Vec<(f64, f64)>> = estimates
            .iter()
            .map(|&e| (0..history_len).map(|i| (e * (1.0 + i as f64 * 0.01), e)).collect())
            .collect();
        let scores = sizey_core::pool_raq_scores(&histories, &estimates, alpha);
        prop_assert_eq!(scores.len(), estimates.len());
        for s in scores {
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn gating_weights_always_sum_to_one(
        estimates in prop::collection::vec(1.0e6f64..200.0e9, 1..6),
        beta in 1.0f64..32.0,
        seed in 0u64..100,
    ) {
        let raq: Vec<f64> = estimates
            .iter()
            .enumerate()
            .map(|(i, _)| ((seed as usize + i * 37) % 100) as f64 / 100.0)
            .collect();
        for strategy in [GatingStrategy::Argmax, GatingStrategy::Interpolation { beta }] {
            let decision = sizey_core::gate(strategy, &estimates, &raq);
            let sum: f64 = decision.weights.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            let min = estimates.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(decision.estimate >= min - 1e-6);
            prop_assert!(decision.estimate <= max + 1e-6);
        }
    }

    #[test]
    fn offset_strategies_are_nonnegative_and_dynamic_is_optimal(
        history in prop::collection::vec((1.0e8f64..50.0e9, 1.0e8f64..50.0e9), 1..30)
    ) {
        for strategy in OffsetStrategy::ALL {
            prop_assert!(strategy.offset(&history) >= 0.0);
        }
        let (_, chosen_offset) = sizey_core::select_dynamic_offset(&history);
        let chosen_cost = sizey_core::hypothetical_wastage(&history, chosen_offset);
        for strategy in OffsetStrategy::ALL {
            let cost = sizey_core::hypothetical_wastage(&history, strategy.offset(&history));
            prop_assert!(chosen_cost <= cost + 1e-6);
        }
    }
}
