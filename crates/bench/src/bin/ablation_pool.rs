//! Ablation — model-pool composition: the full four-class pool vs. every
//! single-model pool (DESIGN.md §5). This isolates the benefit of Sizey's
//! core idea (dynamically selecting among diverse models) over committing to
//! any single model class, as the related work does.
//!
//! Run with `cargo run -p sizey-bench --release --bin ablation_pool`.

use sizey_bench::{banner, fmt, generate_workloads, render_table, HarnessSettings, MethodSpec};
use sizey_core::SizeyConfig;
use sizey_ml::model::ModelClass;
use sizey_sim::{replay_workflow, SimulationConfig};

fn main() {
    let settings = HarnessSettings::from_env();
    banner(
        "Ablation: model-pool composition (full pool vs single classes)",
        &settings,
    );

    let workloads = generate_workloads(&HarnessSettings {
        scale: settings.scale.min(0.1),
        ..settings
    });
    let sim = SimulationConfig::default();

    let mut variants: Vec<(String, Vec<ModelClass>)> =
        vec![("Full pool (paper)".to_string(), ModelClass::ALL.to_vec())];
    for class in ModelClass::ALL {
        variants.push((format!("Only {}", class.name()), vec![class]));
    }

    let mut rows = Vec::new();
    for (label, classes) in variants {
        let mut wastage = 0.0;
        let mut failures = 0usize;
        for workload in &workloads {
            let config = SizeyConfig::default().with_model_classes(classes.clone());
            let mut sizey = MethodSpec::Sizey(config).build();
            let report = replay_workflow(
                &workload.spec.name,
                &workload.instances,
                sizey.as_mut(),
                &sim,
            );
            wastage += report.total_wastage_gbh();
            failures += report.total_failures();
        }
        rows.push(vec![label, fmt(wastage, 2), failures.to_string()]);
    }

    println!(
        "{}",
        render_table(&["Pool", "Total Wastage GBh", "Failures"], &rows)
    );
    println!("Expected shape: the full pool is at least as good as the best single class");
    println!("and clearly better than the worst one — no single model class fits every");
    println!("task type, which is the paper's motivation (Fig. 2).");
}
