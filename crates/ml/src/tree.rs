//! CART-style regression tree.
//!
//! The tree is the building block of the random-forest model class. Splits
//! greedily minimise the within-node variance (equivalently maximise variance
//! reduction) and are searched over candidate thresholds at the midpoints
//! between consecutive distinct feature values.

use crate::dataset::Dataset;
use crate::model::{validate_query, validate_training_data, ModelClass, ModelError, Regressor};

/// Hyper-parameters for [`RegressionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth of the tree (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples required in each leaf.
    pub min_samples_leaf: usize,
    /// Number of feature columns considered at each split. `None` means all
    /// features (plain CART); random forests pass a subset size.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

/// A single node of the fitted tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// CART regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
    fitted: bool,
    /// Feature-subsampling order used when `max_features` is set; supplied by
    /// the forest so a single tree stays deterministic given its seed.
    feature_order: Vec<usize>,
}

struct SplitCandidate {
    feature: usize,
    threshold: f64,
    score: f64,
}

impl RegressionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        RegressionTree {
            config,
            nodes: Vec::new(),
            n_features: 0,
            fitted: false,
            feature_order: Vec::new(),
        }
    }

    /// Creates an unfitted tree with default configuration.
    pub fn with_defaults() -> Self {
        RegressionTree::new(TreeConfig::default())
    }

    /// The configuration used by this tree.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Sets an explicit feature evaluation order (used by the random forest
    /// for per-split feature subsampling). The first `max_features` entries
    /// are evaluated at each split.
    pub fn set_feature_order(&mut self, order: Vec<usize>) {
        self.feature_order = order;
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match &nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Fits the tree on the observations of `data` selected by `indices`
    /// (duplicates allowed — this is how the random forest trains on a
    /// bootstrap resample **without materialising the sample**: the former
    /// implementation cloned every selected row into a scratch dataset per
    /// tree). Training on `indices` is bit-identical to fitting on the
    /// materialised subset: every split-search pass visits the selected rows
    /// in the same order.
    pub fn fit_with_indices(
        &mut self,
        data: &Dataset,
        indices: Vec<usize>,
    ) -> Result<(), ModelError> {
        validate_training_data(data)?;
        self.nodes.clear();
        self.n_features = data.n_features();
        self.build(data, indices, 0);
        self.fitted = true;
        Ok(())
    }

    fn candidate_features(&self, n_features: usize) -> Vec<usize> {
        let all: Vec<usize> = if self.feature_order.is_empty() {
            (0..n_features).collect()
        } else {
            self.feature_order
                .iter()
                .copied()
                .filter(|&f| f < n_features)
                .collect()
        };
        match self.config.max_features {
            Some(k) if k < all.len() => all[..k].to_vec(),
            _ => all,
        }
    }

    fn best_split(&self, data: &Dataset, indices: &[usize]) -> Option<SplitCandidate> {
        let n = indices.len();
        if n < self.config.min_samples_split {
            return None;
        }
        let parent_sum: f64 = indices.iter().map(|&i| data.targets()[i]).sum();
        let parent_sq: f64 = indices
            .iter()
            .map(|&i| data.targets()[i] * data.targets()[i])
            .sum();
        let parent_sse = parent_sq - parent_sum * parent_sum / n as f64;

        let mut best: Option<SplitCandidate> = None;
        for &feature in &self.candidate_features(data.n_features()) {
            // Sort indices by this feature value.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                data.features()[a][feature].total_cmp(&data.features()[b][feature])
            });
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split_pos in 1..n {
                let prev = order[split_pos - 1];
                let y_prev = data.targets()[prev];
                left_sum += y_prev;
                left_sq += y_prev * y_prev;

                let x_prev = data.features()[prev][feature];
                let x_next = data.features()[order[split_pos]][feature];
                if x_prev == x_next {
                    continue; // cannot split between identical values
                }
                let n_left = split_pos;
                let n_right = n - split_pos;
                if n_left < self.config.min_samples_leaf || n_right < self.config.min_samples_leaf {
                    continue;
                }
                let right_sum = parent_sum - left_sum;
                let right_sq = parent_sq - left_sq;
                let left_sse = left_sq - left_sum * left_sum / n_left as f64;
                let right_sse = right_sq - right_sum * right_sum / n_right as f64;
                let gain = parent_sse - (left_sse + right_sse);
                if gain > best.as_ref().map_or(1e-12, |b| b.score) {
                    best = Some(SplitCandidate {
                        feature,
                        threshold: 0.5 * (x_prev + x_next),
                        score: gain,
                    });
                }
            }
        }
        best
    }

    fn build(&mut self, data: &Dataset, indices: Vec<usize>, depth: usize) -> usize {
        let mean = if indices.is_empty() {
            0.0
        } else {
            indices.iter().map(|&i| data.targets()[i]).sum::<f64>() / indices.len() as f64
        };
        if depth >= self.config.max_depth || indices.len() < self.config.min_samples_split {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        match self.best_split(data, &indices) {
            None => {
                self.nodes.push(Node::Leaf { value: mean });
                self.nodes.len() - 1
            }
            Some(split) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .into_iter()
                    .partition(|&i| data.features()[i][split.feature] <= split.threshold);
                // Reserve a slot for this split node, then build children.
                let node_pos = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean }); // placeholder
                let left = self.build(data, left_idx, depth + 1);
                let right = self.build(data, right_idx, depth + 1);
                self.nodes[node_pos] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                node_pos
            }
        }
    }
}

impl Regressor for RegressionTree {
    fn fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        self.nodes.clear();
        self.n_features = data.n_features();
        let indices: Vec<usize> = (0..data.len()).collect();
        self.build(data, indices, 0);
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> Result<f64, ModelError> {
        if !self.fitted || self.nodes.is_empty() {
            return Err(ModelError::NotFitted);
        }
        validate_query(features, self.n_features)?;
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value } => return Ok(*value),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn class(&self) -> ModelClass {
        // A lone tree only exists as a forest component; report the forest
        // class so pool bookkeeping stays within the paper's four classes.
        ModelClass::RandomForest
    }

    fn name(&self) -> String {
        "regression-tree".to_string()
    }

    fn clone_box(&self) -> Box<dyn Regressor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_piecewise_constant_function_exactly() {
        // y = 10 for x < 5, y = 20 for x >= 5
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 5.0 { 10.0 } else { 20.0 })
            .collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut t = RegressionTree::with_defaults();
        t.fit(&data).unwrap();
        assert_eq!(t.predict(&[2.0]).unwrap(), 10.0);
        assert_eq!(t.predict(&[7.0]).unwrap(), 20.0);
    }

    #[test]
    fn depth_zero_returns_global_mean() {
        let data = Dataset::from_univariate(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
        let mut t = RegressionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        t.fit(&data).unwrap();
        assert!((t.predict(&[1.0]).unwrap() - 20.0).abs() < 1e-12);
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn constant_targets_produce_single_leaf() {
        let data = Dataset::from_univariate(&[1.0, 2.0, 3.0, 4.0], &[5.0; 4]);
        let mut t = RegressionTree::with_defaults();
        t.fit(&data).unwrap();
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[100.0]).unwrap(), 5.0);
    }

    #[test]
    fn min_samples_leaf_limits_splits() {
        let xs: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ys: Vec<f64> = vec![0.0, 0.0, 0.0, 100.0, 100.0, 100.0];
        let data = Dataset::from_univariate(&xs, &ys);
        let mut t = RegressionTree::new(TreeConfig {
            min_samples_leaf: 3,
            ..TreeConfig::default()
        });
        t.fit(&data).unwrap();
        // Only one split is possible (3 | 3).
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn multivariate_split_uses_informative_feature() {
        // Target depends on feature 1 only.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..20 {
            features.push(vec![(i % 3) as f64, if i < 10 { 0.0 } else { 1.0 }]);
            targets.push(if i < 10 { 5.0 } else { 50.0 });
        }
        let data = Dataset::from_parts(features, targets);
        let mut t = RegressionTree::with_defaults();
        t.fit(&data).unwrap();
        assert_eq!(t.predict(&[1.0, 0.0]).unwrap(), 5.0);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), 50.0);
    }

    #[test]
    fn prediction_is_within_observed_target_range() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        let data = Dataset::from_univariate(&xs, &ys);
        let mut t = RegressionTree::with_defaults();
        t.fit(&data).unwrap();
        let p = t.predict(&[1000.0]).unwrap();
        assert!((0.0..=99.0 * 99.0).contains(&p));
    }

    #[test]
    fn identical_inputs_different_targets_average() {
        let data = Dataset::from_univariate(&[3.0, 3.0], &[10.0, 30.0]);
        let mut t = RegressionTree::with_defaults();
        t.fit(&data).unwrap();
        assert!((t.predict(&[3.0]).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn errors_before_fit() {
        let t = RegressionTree::with_defaults();
        assert!(matches!(t.predict(&[1.0]), Err(ModelError::NotFitted)));
    }

    #[test]
    fn max_features_restricts_split_candidates() {
        // Feature 0 is informative, feature 1 is noise; restrict to feature 1
        // only via feature order + max_features and verify the tree cannot
        // separate the data (stays shallow / constant).
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..20 {
            features.push(vec![if i < 10 { 0.0 } else { 1.0 }, 0.5]);
            targets.push(if i < 10 { 1.0 } else { 2.0 });
        }
        let data = Dataset::from_parts(features, targets);
        let mut t = RegressionTree::new(TreeConfig {
            max_features: Some(1),
            ..TreeConfig::default()
        });
        t.set_feature_order(vec![1, 0]);
        t.fit(&data).unwrap();
        assert_eq!(t.n_nodes(), 1, "noise-only feature cannot split");
    }
}
