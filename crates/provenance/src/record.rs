//! Core provenance record types.
//!
//! A [`TaskRecord`] captures one finished (or failed) physical task instance:
//! which workflow and abstract task type it belongs to, which machine
//! configuration it ran on, its input size, the memory it was allocated, the
//! peak memory it actually used, and its runtime. The Sizey predictor, the
//! baselines and the simulator all exchange these records.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an abstract task type (the paper's black-box task template
/// `b ∈ B`), e.g. `MarkDuplicates` or `FastQC`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskTypeId(pub String);

impl TaskTypeId {
    /// Creates a task type id from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        TaskTypeId(name.into())
    }

    /// The task type name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TaskTypeId {
    fn from(s: &str) -> Self {
        TaskTypeId::new(s)
    }
}

/// Identifier of a machine configuration (node class) in the cluster.
///
/// Sizey's model granularity is per (task type, machine type) — Fig. 4 of the
/// paper — so the machine id is part of every provenance key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub String);

impl MachineId {
    /// Creates a machine id from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        MachineId(name.into())
    }

    /// The machine name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for MachineId {
    fn from(s: &str) -> Self {
        MachineId::new(s)
    }
}

/// The key under which Sizey maintains one model pool: a task type executed
/// on a machine configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskMachineKey {
    /// The abstract task type.
    pub task_type: TaskTypeId,
    /// The machine configuration.
    pub machine: MachineId,
}

impl TaskMachineKey {
    /// Creates a key.
    pub fn new(task_type: impl Into<String>, machine: impl Into<String>) -> Self {
        TaskMachineKey {
            task_type: TaskTypeId::new(task_type),
            machine: MachineId::new(machine),
        }
    }
}

impl fmt::Display for TaskMachineKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.task_type, self.machine)
    }
}

/// Unifies owned [`TaskMachineKey`]s and borrowed [`KeyRef`] views for
/// ordered-map lookups: `BTreeMap<TaskMachineKey, _>` can be probed with
/// `&KeyRef { .. } as &dyn KeyQuery`, so the predict hot path never clones
/// the two key `String`s just to look a pool up.
pub trait KeyQuery {
    /// The `(task type, machine)` pair this key denotes.
    fn key_parts(&self) -> (&str, &str);
}

impl KeyQuery for TaskMachineKey {
    fn key_parts(&self) -> (&str, &str) {
        (self.task_type.as_str(), self.machine.as_str())
    }
}

/// A borrowed `(task type, machine)` key for clone-free map lookups.
#[derive(Debug, Clone, Copy)]
pub struct KeyRef<'a> {
    /// The abstract task type.
    pub task_type: &'a str,
    /// The machine configuration.
    pub machine: &'a str,
}

impl KeyQuery for KeyRef<'_> {
    fn key_parts(&self) -> (&str, &str) {
        (self.task_type, self.machine)
    }
}

impl PartialEq for dyn KeyQuery + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.key_parts() == other.key_parts()
    }
}

impl Eq for dyn KeyQuery + '_ {}

impl PartialOrd for dyn KeyQuery + '_ {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// This order must agree with `TaskMachineKey`'s derived `Ord` — it does,
// because the derive is lexicographic over the two `String` newtypes, which
// compare exactly like their `&str` views.
impl Ord for dyn KeyQuery + '_ {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key_parts().cmp(&other.key_parts())
    }
}

impl<'a> std::borrow::Borrow<dyn KeyQuery + 'a> for TaskMachineKey {
    fn borrow(&self) -> &(dyn KeyQuery + 'a) {
        self
    }
}

/// Outcome of a physical task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// The task finished within its memory allocation.
    Succeeded,
    /// The task exceeded its memory allocation and was killed by the resource
    /// manager (assumption A3 of the paper: strict limits).
    FailedOutOfMemory,
}

/// One finished physical task instance with its measured resource usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Workflow the task belongs to (e.g. `rnaseq`).
    pub workflow: String,
    /// Abstract task type.
    pub task_type: TaskTypeId,
    /// Machine configuration the instance ran on.
    pub machine: MachineId,
    /// Monotonic submission index within the workflow execution; provenance
    /// queries return records ordered by this field.
    pub sequence: u64,
    /// Total input size in bytes (the paper's primary feature).
    pub input_bytes: f64,
    /// Peak memory actually consumed, in bytes.
    pub peak_memory_bytes: f64,
    /// Memory that was allocated for the attempt, in bytes.
    pub allocated_memory_bytes: f64,
    /// Wall-clock runtime of the attempt in seconds.
    pub runtime_seconds: f64,
    /// Number of tasks concurrently running when this one was submitted
    /// (available to models as an additional feature).
    pub concurrent_tasks: u32,
    /// Time the attempt spent waiting in the cluster's pending queue before
    /// resources were granted, in seconds. Zero when the task started
    /// immediately (or when the record predates the event-driven scheduler).
    /// Predictors can use this as a contention signal: over-allocation by one
    /// tenant shows up as queue delay for everyone.
    pub queue_delay_seconds: f64,
    /// Outcome of the attempt.
    pub outcome: TaskOutcome,
}

impl TaskRecord {
    /// The (task type, machine) key of this record.
    pub fn key(&self) -> TaskMachineKey {
        TaskMachineKey {
            task_type: self.task_type.clone(),
            machine: self.machine.clone(),
        }
    }

    /// Feature vector used by the prediction models. The paper's primary
    /// feature is the input size; the number of concurrently running tasks is
    /// retrieved from the provenance store as additional context.
    pub fn features(&self) -> Vec<f64> {
        vec![self.input_bytes]
    }

    /// The regression target: peak memory in bytes.
    pub fn target(&self) -> f64 {
        self.peak_memory_bytes
    }

    /// Memory wasted by this attempt in bytes (allocated minus used, floored
    /// at zero; failed attempts waste their full allocation since the work
    /// must be redone).
    pub fn wasted_bytes(&self) -> f64 {
        match self.outcome {
            TaskOutcome::Succeeded => {
                (self.allocated_memory_bytes - self.peak_memory_bytes).max(0.0)
            }
            TaskOutcome::FailedOutOfMemory => self.allocated_memory_bytes,
        }
    }

    /// Memory wastage over time in gigabyte-hours (the paper's headline
    /// metric).
    pub fn wastage_gbh(&self) -> f64 {
        bytes_to_gb(self.wasted_bytes()) * self.runtime_seconds / 3600.0
    }
}

/// Converts bytes to gigabytes (SI, 1 GB = 1e9 bytes, matching the paper's
/// GB/GBh units).
pub fn bytes_to_gb(bytes: f64) -> f64 {
    bytes / 1e9
}

/// Converts gigabytes to bytes.
pub fn gb_to_bytes(gb: f64) -> f64 {
    gb * 1e9
}

/// Converts bytes to mebibyte-free megabytes (1 MB = 1e6 bytes).
pub fn bytes_to_mb(bytes: f64) -> f64 {
    bytes / 1e6
}

/// Converts megabytes to bytes.
pub fn mb_to_bytes(mb: f64) -> f64 {
    mb * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(outcome: TaskOutcome) -> TaskRecord {
        TaskRecord {
            workflow: "rnaseq".to_string(),
            task_type: TaskTypeId::new("FastQC"),
            machine: MachineId::new("node-a"),
            sequence: 3,
            input_bytes: 2e9,
            peak_memory_bytes: 1e9,
            allocated_memory_bytes: 4e9,
            runtime_seconds: 1800.0,
            concurrent_tasks: 4,
            queue_delay_seconds: 0.0,
            outcome,
        }
    }

    #[test]
    fn key_combines_task_and_machine() {
        let r = record(TaskOutcome::Succeeded);
        let k = r.key();
        assert_eq!(k.task_type.as_str(), "FastQC");
        assert_eq!(k.machine.as_str(), "node-a");
        assert_eq!(k.to_string(), "FastQC@node-a");
    }

    #[test]
    fn features_and_target() {
        let r = record(TaskOutcome::Succeeded);
        assert_eq!(r.features(), vec![2e9]);
        assert_eq!(r.target(), 1e9);
    }

    #[test]
    fn wasted_bytes_success_is_allocation_minus_usage() {
        let r = record(TaskOutcome::Succeeded);
        assert_eq!(r.wasted_bytes(), 3e9);
    }

    #[test]
    fn wasted_bytes_failure_is_full_allocation() {
        let r = record(TaskOutcome::FailedOutOfMemory);
        assert_eq!(r.wasted_bytes(), 4e9);
    }

    #[test]
    fn wasted_bytes_never_negative() {
        let mut r = record(TaskOutcome::Succeeded);
        r.allocated_memory_bytes = 0.5e9;
        assert_eq!(r.wasted_bytes(), 0.0);
    }

    #[test]
    fn wastage_gbh_matches_manual_computation() {
        let r = record(TaskOutcome::Succeeded);
        // 3 GB wasted for 0.5 hours = 1.5 GBh
        assert!((r.wastage_gbh() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(gb_to_bytes(bytes_to_gb(5e9)), 5e9);
        assert_eq!(mb_to_bytes(bytes_to_mb(3e6)), 3e6);
        assert_eq!(bytes_to_mb(1e6), 1.0);
        assert_eq!(bytes_to_gb(1e9), 1.0);
    }

    #[test]
    fn ids_support_display_and_from_str() {
        let t: TaskTypeId = "mpileup".into();
        let m: MachineId = "node-1".into();
        assert_eq!(t.to_string(), "mpileup");
        assert_eq!(m.to_string(), "node-1");
    }
}
