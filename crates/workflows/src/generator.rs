//! Workload generation: turning a [`WorkflowSpec`] into a concrete, ordered
//! stream of physical task instances.
//!
//! The generator is deterministic given a seed, supports scaling the number
//! of instances (so benchmarks can trade fidelity for runtime), and
//! interleaves the task types the way a real DAG execution does: instances of
//! different types arrive roughly round-robin instead of one type at a time,
//! which is what makes *online* learning across types meaningful.

use crate::memfn::DriftSpec;
use crate::model::{TaskInstance, TaskTypeSpec, WorkflowSpec};
use crate::profiles::MACHINE_NAME;
use crate::sampling;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sizey_provenance::MachineId;

/// Configuration of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; the same seed always produces the same workload.
    pub seed: u64,
    /// Scale factor applied to every task type's instance count. `1.0`
    /// reproduces the full Table I volume; benchmarks typically use a smaller
    /// value. Each type keeps at least [`GeneratorConfig::min_instances`]
    /// instances.
    pub scale: f64,
    /// Lower bound on instances per task type after scaling. The paper
    /// filters out task types with only a single or very few executions, so
    /// the default is 4.
    pub min_instances: usize,
    /// When true, the arrival order interleaves task types (wave-by-wave,
    /// like a data-parallel DAG); when false, instances arrive grouped by
    /// task type.
    pub interleave: bool,
    /// Optional mid-run regime change applied to every instance's true peak
    /// memory past a changepoint in arrival order (see [`DriftSpec`]). The
    /// transform happens after all sampling, so it consumes no RNG draws and
    /// the materialised and streaming generators stay bit-identical. `None`
    /// (the default) reproduces the stationary workload exactly.
    pub drift: Option<DriftSpec>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 42,
            scale: 1.0,
            min_instances: 4,
            interleave: true,
            drift: None,
        }
    }
}

impl GeneratorConfig {
    /// Convenience constructor for a scaled-down workload.
    pub fn scaled(scale: f64, seed: u64) -> Self {
        GeneratorConfig {
            seed,
            scale,
            ..GeneratorConfig::default()
        }
    }

    /// Returns a copy with a mid-run drift applied (see [`DriftSpec`]).
    pub fn with_drift(mut self, drift: DriftSpec) -> Self {
        self.drift = Some(drift);
        self
    }
}

/// Generates the physical task instances of one workflow execution.
pub fn generate_workflow(spec: &WorkflowSpec, config: &GeneratorConfig) -> Vec<TaskInstance> {
    let mut rng = StdRng::seed_from_u64(config.seed ^ hash_name(&spec.name));
    let machine = MachineId::new(MACHINE_NAME);

    // Draw every instance per task type first.
    let mut per_type: Vec<Vec<TaskInstance>> = Vec::with_capacity(spec.task_types.len());
    for task_type in &spec.task_types {
        let count = scaled_count(task_type.instances, config);
        let mut instances = Vec::with_capacity(count);
        for _ in 0..count {
            instances.push(instantiate(spec, task_type, &machine, &mut rng));
        }
        per_type.push(instances);
    }

    // Interleave into an arrival order.
    let mut ordered: Vec<TaskInstance> = Vec::with_capacity(per_type.iter().map(Vec::len).sum());
    if config.interleave {
        let mut cursors: Vec<usize> = vec![0; per_type.len()];
        loop {
            let mut progressed = false;
            // Visit task types in a shuffled order each wave so no type is
            // systematically first.
            let mut order: Vec<usize> = (0..per_type.len()).collect();
            order.shuffle(&mut rng);
            for &ti in &order {
                // Each wave emits a small burst per type, proportional to how
                // many instances the type has left relative to others.
                let remaining = per_type[ti].len() - cursors[ti];
                if remaining == 0 {
                    continue;
                }
                let burst = (remaining / 8).clamp(1, 16);
                for _ in 0..burst {
                    if cursors[ti] < per_type[ti].len() {
                        ordered.push(per_type[ti][cursors[ti]].clone());
                        cursors[ti] += 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    } else {
        for instances in &per_type {
            ordered.extend(instances.iter().cloned());
        }
    }

    // Assign the submission sequence in arrival order, then apply the
    // optional drift — a pure post-transform keyed on the sequence, so it
    // cannot perturb any RNG draw above.
    for (i, inst) in ordered.iter_mut().enumerate() {
        inst.sequence = i as u64;
        if let Some(drift) = &config.drift {
            inst.true_peak_bytes =
                drift.apply(inst.sequence, inst.input_bytes, inst.true_peak_bytes);
        }
    }
    ordered
}

/// A lazily evaluated, allocation-bounded stream of the exact instances
/// [`generate_workflow`] would materialise — same spec, same config, same
/// seed, same arrival order, **bit-identical** values.
///
/// The materialised generator works in two phases over a single RNG: phase 1
/// draws every instance type-by-type, phase 2 interleaves them into waves
/// using the *same* RNG for the per-wave shuffles. The stream reproduces this
/// without retaining the drawn instances: the constructor clones the RNG
/// state at the start of each type's draw block (one small `[u64; 4]` state
/// per type), advances the main RNG past all draws by drawing-and-discarding,
/// and then re-draws each instance on demand from its type's cloned RNG in
/// the original draw order while the advanced main RNG replays the wave
/// shuffles. Peak memory is `O(#task_types)` regardless of how many instances
/// the workflow has; the constructor costs one extra pass of RNG work.
///
/// The differential harness (`tests/streaming_equivalence.rs`) pins
/// `WorkflowStream::collect::<Vec<_>>() == generate_workflow(..)` across
/// profiles, seeds and scales.
#[derive(Debug, Clone)]
pub struct WorkflowStream {
    spec: WorkflowSpec,
    machine: MachineId,
    /// Main RNG, advanced past every phase-1 draw; replays the wave shuffles.
    rng: StdRng,
    /// Per task type: the RNG state at the start of the type's draw block.
    type_rngs: Vec<StdRng>,
    /// Per task type: total instances to emit.
    counts: Vec<usize>,
    /// Per task type: instances emitted so far.
    cursors: Vec<usize>,
    /// When true, emit wave-interleaved; when false, grouped by type.
    interleave: bool,
    /// Flattened emission plan of the current wave: one type index per
    /// pending instance (bounded by `#types * 16`).
    wave: std::collections::VecDeque<usize>,
    /// Next submission sequence number, assigned in arrival order.
    next_sequence: u64,
    /// Instances still to be emitted across all types.
    remaining_total: usize,
    /// Optional mid-run drift, applied on emission (post-sampling).
    drift: Option<DriftSpec>,
}

impl WorkflowStream {
    /// Builds the stream for one workflow execution. Equivalent to
    /// [`generate_workflow`] with the same arguments, but lazy.
    pub fn new(spec: &WorkflowSpec, config: &GeneratorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ hash_name(&spec.name));
        let machine = MachineId::new(MACHINE_NAME);
        let mut type_rngs = Vec::with_capacity(spec.task_types.len());
        let mut counts = Vec::with_capacity(spec.task_types.len());
        for task_type in &spec.task_types {
            let count = scaled_count(task_type.instances, config);
            type_rngs.push(rng.clone());
            // Advance the main RNG past this type's draw block; the drawn
            // instances are discarded (they will be re-drawn on demand from
            // the cloned state).
            for _ in 0..count {
                let _ = instantiate(spec, task_type, &machine, &mut rng);
            }
            counts.push(count);
        }
        let remaining_total = counts.iter().sum();
        WorkflowStream {
            spec: spec.clone(),
            machine,
            rng,
            type_rngs,
            cursors: vec![0; counts.len()],
            counts,
            interleave: config.interleave,
            wave: std::collections::VecDeque::new(),
            next_sequence: 0,
            remaining_total,
            drift: config.drift,
        }
    }

    /// Total number of instances the stream will emit (constant; does not
    /// decrease as the stream is consumed).
    pub fn total_instances(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Plans the next wave of the interleaved order, mirroring one iteration
    /// of the materialised generator's wave loop (shuffle the type order,
    /// then burst `clamp(remaining / 8, 1, 16)` instances per type).
    fn plan_wave(&mut self) {
        let mut order: Vec<usize> = (0..self.counts.len()).collect();
        order.shuffle(&mut self.rng);
        for &ti in &order {
            let remaining = self.counts[ti] - self.cursors[ti];
            if remaining == 0 {
                continue;
            }
            let burst = (remaining / 8).clamp(1, 16);
            for _ in 0..burst {
                self.wave.push_back(ti);
            }
            // Reserve the burst so the next type's `remaining` in this wave
            // matches the materialised generator (cursors only advance for
            // the type being visited, exactly once per wave).
            self.cursors[ti] += burst;
        }
    }

    /// Draws the next instance of type `ti` from its cloned RNG state.
    fn emit(&mut self, ti: usize) -> TaskInstance {
        let mut inst = instantiate(
            &self.spec,
            &self.spec.task_types[ti],
            &self.machine,
            &mut self.type_rngs[ti],
        );
        inst.sequence = self.next_sequence;
        if let Some(drift) = &self.drift {
            inst.true_peak_bytes =
                drift.apply(inst.sequence, inst.input_bytes, inst.true_peak_bytes);
        }
        self.next_sequence += 1;
        self.remaining_total -= 1;
        inst
    }
}

impl Iterator for WorkflowStream {
    type Item = TaskInstance;

    fn next(&mut self) -> Option<TaskInstance> {
        if self.remaining_total == 0 {
            return None;
        }
        if self.interleave {
            while self.wave.is_empty() {
                self.plan_wave();
            }
            let ti = self.wave.pop_front().expect("planned wave is non-empty");
            Some(self.emit(ti))
        } else {
            // Grouped order: first type with instances left. `cursors` here
            // counts emissions directly (no wave reservations).
            let ti = (0..self.counts.len()).find(|&ti| self.cursors[ti] < self.counts[ti])?;
            self.cursors[ti] += 1;
            Some(self.emit(ti))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining_total, Some(self.remaining_total))
    }
}

impl ExactSizeIterator for WorkflowStream {}

/// Streaming counterpart of [`generate_workflow`]: yields the identical
/// instance sequence without materialising it.
pub fn stream_workflow(spec: &WorkflowSpec, config: &GeneratorConfig) -> WorkflowStream {
    WorkflowStream::new(spec, config)
}

/// Generates all six evaluation workflows with the same configuration.
pub fn generate_all(
    specs: &[WorkflowSpec],
    config: &GeneratorConfig,
) -> Vec<(WorkflowSpec, Vec<TaskInstance>)> {
    specs
        .iter()
        .map(|s| (s.clone(), generate_workflow(s, config)))
        .collect()
}

fn scaled_count(instances: usize, config: &GeneratorConfig) -> usize {
    ((instances as f64 * config.scale).round() as usize).max(config.min_instances)
}

fn instantiate(
    spec: &WorkflowSpec,
    task_type: &TaskTypeSpec,
    machine: &MachineId,
    rng: &mut StdRng,
) -> TaskInstance {
    let input_bytes = task_type.input_model.sample(rng);
    let true_peak_bytes = task_type.memory_model.sample(rng, input_bytes);
    let base_runtime_seconds = task_type.runtime_model.sample(rng, input_bytes);
    let fp = task_type.footprint;
    let cpu = sampling::truncated_normal(
        rng,
        fp.cpu_utilization_pct,
        fp.cpu_utilization_pct * fp.cpu_cv,
        1.0,
    );
    let io_read = input_bytes * fp.io_read_factor * sampling::multiplicative_noise(rng, 0.2);
    let io_write = input_bytes * fp.io_write_factor * sampling::multiplicative_noise(rng, 0.3);
    TaskInstance {
        workflow: spec.name.clone(),
        task_type: task_type.id(),
        machine: machine.clone(),
        sequence: 0, // assigned later in arrival order
        input_bytes,
        true_peak_bytes,
        base_runtime_seconds,
        preset_memory_bytes: task_type.preset_memory_bytes,
        cpu_utilization_pct: cpu,
        io_read_bytes: io_read,
        io_write_bytes: io_write,
    }
}

/// Cheap stable hash of the workflow name so different workflows get
/// different RNG streams from the same seed.
fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn generation_is_deterministic_given_seed() {
        let spec = profiles::iwd();
        let cfg = GeneratorConfig::scaled(0.1, 7);
        let a = generate_workflow(&spec, &cfg);
        let b = generate_workflow(&spec, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_produce_different_workloads() {
        let spec = profiles::iwd();
        let a = generate_workflow(&spec, &GeneratorConfig::scaled(0.1, 1));
        let b = generate_workflow(&spec, &GeneratorConfig::scaled(0.1, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn full_scale_matches_spec_totals() {
        let spec = profiles::methylseq();
        let instances = generate_workflow(&spec, &GeneratorConfig::default());
        assert_eq!(instances.len(), spec.total_instances());
    }

    #[test]
    fn scaling_reduces_instances_but_keeps_minimum() {
        let spec = profiles::rnaseq();
        let cfg = GeneratorConfig {
            scale: 0.01,
            min_instances: 4,
            ..GeneratorConfig::default()
        };
        let instances = generate_workflow(&spec, &cfg);
        // Every task type must still appear at least min_instances times.
        for t in &spec.task_types {
            let count = instances.iter().filter(|i| i.task_type == t.id()).count();
            assert!(count >= 4, "{} has only {count} instances", t.name);
        }
        assert!(instances.len() < spec.total_instances());
    }

    #[test]
    fn sequences_are_consecutive_from_zero() {
        let spec = profiles::iwd();
        let instances = generate_workflow(&spec, &GeneratorConfig::scaled(0.05, 3));
        for (i, inst) in instances.iter().enumerate() {
            assert_eq!(inst.sequence, i as u64);
        }
    }

    #[test]
    fn interleaving_mixes_task_types_early() {
        let spec = profiles::mag();
        let cfg = GeneratorConfig::scaled(0.05, 11);
        let instances = generate_workflow(&spec, &cfg);
        // Within the first 15% of arrivals we expect to see more than half of
        // the task types already.
        let prefix = instances.len() * 15 / 100;
        let seen: std::collections::HashSet<_> = instances[..prefix]
            .iter()
            .map(|i| i.task_type.clone())
            .collect();
        assert!(
            seen.len() * 2 >= spec.n_task_types(),
            "only {} of {} types in the first 15%",
            seen.len(),
            spec.n_task_types()
        );
    }

    #[test]
    fn grouped_order_keeps_types_contiguous() {
        let spec = profiles::iwd();
        let cfg = GeneratorConfig {
            interleave: false,
            scale: 0.05,
            ..GeneratorConfig::default()
        };
        let instances = generate_workflow(&spec, &cfg);
        // Count transitions between different task types; grouped order has
        // exactly n_types - 1 transitions.
        let transitions = instances
            .windows(2)
            .filter(|w| w[0].task_type != w[1].task_type)
            .count();
        assert_eq!(transitions, spec.n_task_types() - 1);
    }

    #[test]
    fn instances_have_positive_resources() {
        for (spec, instances) in generate_all(
            &profiles::all_workflows(),
            &GeneratorConfig::scaled(0.02, 5),
        ) {
            assert!(!instances.is_empty(), "{} generated nothing", spec.name);
            for inst in &instances {
                assert!(inst.input_bytes > 0.0);
                assert!(inst.true_peak_bytes > 0.0);
                assert!(inst.base_runtime_seconds >= 1.0);
                assert!(inst.preset_memory_bytes > 0.0);
                assert!(inst.cpu_utilization_pct > 0.0);
                assert_eq!(inst.machine, MachineId::new(MACHINE_NAME));
                assert_eq!(inst.workflow, spec.name);
            }
        }
    }

    #[test]
    fn stream_matches_materialised_generation() {
        for spec in profiles::all_workflows() {
            for interleave in [true, false] {
                let cfg = GeneratorConfig {
                    scale: 0.03,
                    seed: 91,
                    min_instances: 4,
                    interleave,
                    drift: None,
                };
                let materialised = generate_workflow(&spec, &cfg);
                let stream = stream_workflow(&spec, &cfg);
                assert_eq!(stream.len(), materialised.len());
                assert_eq!(stream.total_instances(), materialised.len());
                let streamed: Vec<TaskInstance> = stream.collect();
                assert_eq!(
                    streamed, materialised,
                    "{} interleave={interleave}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn drift_changes_only_post_changepoint_peaks_and_keeps_streams_identical() {
        let spec = profiles::iwd();
        let stationary_cfg = GeneratorConfig::scaled(0.05, 17);
        let changepoint = 40;
        let drift = DriftSpec {
            changepoint,
            memory_scale: 1.5,
            slope_delta_bytes_per_input_byte: 0.5,
        };
        let drifted_cfg = stationary_cfg.with_drift(drift);

        let stationary = generate_workflow(&spec, &stationary_cfg);
        let drifted = generate_workflow(&spec, &drifted_cfg);
        assert_eq!(stationary.len(), drifted.len());
        assert!(
            stationary.len() as u64 > changepoint,
            "need a changepoint inside the run"
        );
        let mut shifted = 0;
        for (s, d) in stationary.iter().zip(&drifted) {
            // Only the peak may differ; everything else (including the RNG
            // draws that produced it) is untouched.
            assert_eq!(s.input_bytes, d.input_bytes);
            assert_eq!(s.base_runtime_seconds, d.base_runtime_seconds);
            assert_eq!(s.sequence, d.sequence);
            if s.sequence < changepoint {
                assert_eq!(s.true_peak_bytes, d.true_peak_bytes);
            } else {
                assert_eq!(
                    d.true_peak_bytes,
                    drift.apply(s.sequence, s.input_bytes, s.true_peak_bytes)
                );
                if s.true_peak_bytes != d.true_peak_bytes {
                    shifted += 1;
                }
            }
        }
        assert!(shifted > 0, "drift shifted no peaks");

        // The streaming generator applies the same transform bit-identically.
        let streamed: Vec<TaskInstance> = stream_workflow(&spec, &drifted_cfg).collect();
        assert_eq!(streamed, drifted);

        // The identity drift is bit-identical to no drift at all.
        let identity = stationary_cfg.with_drift(DriftSpec::scale_shift(0, 1.0));
        assert_eq!(generate_workflow(&spec, &identity), stationary);
    }

    #[test]
    fn stream_size_hint_counts_down() {
        let spec = profiles::iwd();
        let mut stream = stream_workflow(&spec, &GeneratorConfig::scaled(0.05, 3));
        let total = stream.len();
        assert!(total > 0);
        stream.next().unwrap();
        assert_eq!(stream.len(), total - 1);
        assert_eq!(stream.total_instances(), total);
    }

    #[test]
    fn hash_name_differs_for_different_names() {
        assert_ne!(hash_name("eager"), hash_name("rnaseq"));
        assert_eq!(hash_name("mag"), hash_name("mag"));
    }
}
