//! The predictor interface every memory-sizing method implements.
//!
//! Sizey, the four state-of-the-art baselines and the workflow presets all
//! plug into the replay engine through [`MemoryPredictor`]: the engine asks
//! for an allocation when a task is submitted (and again for every retry
//! after an out-of-memory failure), and feeds back a provenance record when
//! an attempt finishes.
//!
//! The interface is split into a **read path** and a **write path**:
//! [`MemoryPredictor::predict`] takes `&self` and must not mutate learned
//! state, while [`MemoryPredictor::observe`] takes `&mut self` and is the
//! only place models update. Per-attempt retry state (the allocation of the
//! attempt that just failed) is owned by the *engine*, not the predictor,
//! and handed in through [`AttemptContext`] — predictors are pure functions
//! of their learned state plus the context, which is what makes them
//! shareable behind read-write locks (see `sizey_core`'s concurrent serving
//! layer) and structurally unable to leak per-task bookkeeping.

use sizey_provenance::{MachineId, TaskRecord, TaskTypeId};

/// The information a sizing method sees when a task is submitted — exactly
/// what a resource manager knows before execution: identity, input size and
/// the workflow developer's requested memory.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSubmission {
    /// Workflow the task belongs to.
    pub workflow: String,
    /// Abstract task type.
    pub task_type: TaskTypeId,
    /// Machine configuration the task will run on.
    pub machine: MachineId,
    /// Submission order within the workflow execution.
    pub sequence: u64,
    /// Input size in bytes.
    pub input_bytes: f64,
    /// The user-provided memory request for this task type, in bytes.
    pub preset_memory_bytes: f64,
}

impl TaskSubmission {
    /// Feature vector exposed to learning-based predictors.
    pub fn features(&self) -> Vec<f64> {
        vec![self.input_bytes]
    }
}

/// A sizing decision for one attempt of one task.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The memory the task should be allocated, in bytes.
    pub allocation_bytes: f64,
    /// The raw model estimate before any safety offset was applied (used by
    /// the Fig. 12 prediction-error analysis). `None` when the method has no
    /// notion of a raw estimate (e.g. presets).
    pub raw_estimate_bytes: Option<f64>,
    /// Name of the model (class) that produced the estimate, when the method
    /// selects among several (used by the Fig. 11 analysis). A `&'static
    /// str` rather than an owned `String`: predictions are minted on the
    /// hot path, and every producer picks from a fixed set of model names.
    pub selected_model: Option<&'static str>,
}

impl Prediction {
    /// Convenience constructor for methods without raw-estimate/model
    /// telemetry.
    pub fn simple(allocation_bytes: f64) -> Self {
        Prediction {
            allocation_bytes,
            raw_estimate_bytes: None,
            selected_model: None,
        }
    }
}

/// Engine-owned retry state for one attempt of one task.
///
/// The replay engine (not the predictor) remembers what happened to the
/// previous attempt of an in-flight task and hands it to
/// [`MemoryPredictor::predict`]. Keeping this state out of the predictors
/// eliminates a whole leak class: a predictor cannot forget to evict a
/// per-task map entry when a task terminally fails, because it never holds
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttemptContext {
    /// 0 for the first submission, incremented after every out-of-memory
    /// failure of the same task instance.
    pub attempt: u32,
    /// The allocation actually granted to the previous (failed) attempt, as
    /// the engine ran it — i.e. after any node-capacity clamping. `None` on
    /// the first attempt, or when the caller has no record of the failed
    /// attempt (methods then fall back to the user preset).
    pub last_allocation_bytes: Option<f64>,
}

impl AttemptContext {
    /// The context of a first submission.
    pub fn first() -> Self {
        AttemptContext::default()
    }

    /// The context of retry `attempt` (≥ 1) whose previous attempt ran with
    /// `last_allocation_bytes`.
    pub fn retry(attempt: u32, last_allocation_bytes: f64) -> Self {
        AttemptContext {
            attempt,
            last_allocation_bytes: Some(last_allocation_bytes),
        }
    }
}

/// A memory sizing method that can be replayed through the online simulator.
///
/// The trait is split into a lock-friendly read path ([`predict`] on
/// `&self`) and a write path ([`observe`] on `&mut self`): many threads may
/// predict concurrently between model updates.
///
/// [`predict`]: MemoryPredictor::predict
/// [`observe`]: MemoryPredictor::observe
pub trait MemoryPredictor: Send {
    /// Human-readable method name (used in result tables).
    fn name(&self) -> String;

    /// Produces the allocation for an attempt of a task. Retry state — the
    /// attempt number and the previous attempt's allocation — arrives in
    /// `ctx`, owned by the engine; methods implement their own failure
    /// handling (doubling, node maximum, ...) based on it. Must not mutate
    /// learned state: all model updates belong in
    /// [`observe`](MemoryPredictor::observe).
    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction;

    /// Called after every finished attempt (successful or failed) with the
    /// monitoring record; online methods update their models here.
    fn observe(&mut self, record: &TaskRecord);
}

/// A trivial predictor that always allocates the user preset — the
/// `Workflow-Presets` sanity baseline of the paper. It lives here (rather
/// than in the baselines crate) because the simulator's own tests need a
/// predictor.
#[derive(Debug, Default, Clone)]
pub struct PresetPredictor;

impl MemoryPredictor for PresetPredictor {
    fn name(&self) -> String {
        "Workflow-Presets".to_string()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        // Presets are already conservative; on the (rare) failure double.
        let factor = 2.0_f64.powi(ctx.attempt as i32);
        Prediction::simple(task.preset_memory_bytes * factor)
    }

    fn observe(&mut self, _record: &TaskRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submission() -> TaskSubmission {
        TaskSubmission {
            workflow: "rnaseq".into(),
            task_type: TaskTypeId::new("FastQC"),
            machine: MachineId::new("node"),
            sequence: 5,
            input_bytes: 2e9,
            preset_memory_bytes: 8e9,
        }
    }

    #[test]
    fn submission_features_are_input_size() {
        assert_eq!(submission().features(), vec![2e9]);
    }

    #[test]
    fn simple_prediction_has_no_telemetry() {
        let p = Prediction::simple(4e9);
        assert_eq!(p.allocation_bytes, 4e9);
        assert!(p.raw_estimate_bytes.is_none());
        assert!(p.selected_model.is_none());
    }

    #[test]
    fn preset_predictor_allocates_preset_and_doubles_on_retry() {
        let p = PresetPredictor;
        let task = submission();
        assert_eq!(
            p.predict(&task, AttemptContext::first()).allocation_bytes,
            8e9
        );
        assert_eq!(
            p.predict(&task, AttemptContext::retry(1, 8e9))
                .allocation_bytes,
            16e9
        );
        assert_eq!(
            p.predict(&task, AttemptContext::retry(2, 16e9))
                .allocation_bytes,
            32e9
        );
        assert_eq!(p.name(), "Workflow-Presets");
    }

    #[test]
    fn attempt_context_constructors() {
        assert_eq!(AttemptContext::first().attempt, 0);
        assert!(AttemptContext::first().last_allocation_bytes.is_none());
        let retry = AttemptContext::retry(2, 4e9);
        assert_eq!(retry.attempt, 2);
        assert_eq!(retry.last_allocation_bytes, Some(4e9));
    }
}
