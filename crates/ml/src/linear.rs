//! Ordinary-least-squares / ridge linear regression.
//!
//! The paper motivates the linear model class with the frequently observed
//! linear relationship between input data size and peak memory (Fig. 2,
//! MarkDuplicates). The model is fitted by solving the (optionally ridge
//! regularised) normal equations; incremental updates maintain the Gram
//! matrix `X^T X` and moment vector `X^T y`, so a `partial_fit` only costs a
//! rank-one update plus one small solve.

use crate::dataset::Dataset;
use crate::matrix::Matrix;
use crate::model::{
    validate_query, validate_training_data, ModelClass, ModelError, PredictScratch, Regressor,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// Hyper-parameters for [`LinearRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearConfig {
    /// Ridge regularisation strength added to the diagonal of the Gram
    /// matrix. `0.0` gives plain OLS; a small positive value keeps the solve
    /// well-conditioned when all observed input sizes are identical.
    pub l2: f64,
    /// Whether to fit an intercept term.
    pub fit_intercept: bool,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            l2: 1e-8,
            fit_intercept: true,
        }
    }
}

/// Linear regression model (OLS / ridge) with incremental normal-equation
/// updates.
///
/// The solve is **lazy**: `partial_fit` only folds the observation into the
/// exact sufficient statistics (Gram matrix and moment vector) and marks the
/// coefficients stale; the normal equations are solved on the first
/// `predict` after an update, not on every observe. The sufficient
/// statistics are exact, so the lazily solved coefficients are bit-identical
/// to solving eagerly after every observation. `fit` is **transactional**: a
/// failed refit leaves the previous fitted state (statistics and
/// coefficients) fully intact.
pub struct LinearRegression {
    config: LinearConfig,
    /// Fitted coefficients, intercept first when `fit_intercept` is set.
    /// Interior-mutable so the lazy solve can run under `&self` on the
    /// predict path; a lock (not a `RefCell`) keeps the model `Sync`.
    coefficients: RwLock<Vec<f64>>,
    /// Set by updates to the sufficient statistics; cleared by the lazy
    /// solve.
    coefficients_stale: AtomicBool,
    /// Accumulated Gram matrix `X^T X` (in augmented feature space).
    gram: Option<Matrix>,
    /// Accumulated moment vector `X^T y` (in augmented feature space).
    moments: Vec<f64>,
    /// Number of observations the sufficient statistics cover.
    n_observations: usize,
    n_features: usize,
    fitted: bool,
}

impl std::fmt::Debug for LinearRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinearRegression")
            .field("config", &self.config)
            .field("n_observations", &self.n_observations)
            .field("n_features", &self.n_features)
            .field("fitted", &self.fitted)
            .finish()
    }
}

impl Clone for LinearRegression {
    fn clone(&self) -> Self {
        LinearRegression {
            config: self.config,
            coefficients: RwLock::new(self.coefficients.read().expect("lock").clone()),
            coefficients_stale: AtomicBool::new(self.coefficients_stale.load(Ordering::Acquire)),
            gram: self.gram.clone(),
            moments: self.moments.clone(),
            n_observations: self.n_observations,
            n_features: self.n_features,
            fitted: self.fitted,
        }
    }
}

impl LinearRegression {
    /// Creates an unfitted model with the given configuration.
    pub fn new(config: LinearConfig) -> Self {
        LinearRegression {
            config,
            coefficients: RwLock::new(Vec::new()),
            coefficients_stale: AtomicBool::new(false),
            gram: None,
            moments: Vec::new(),
            n_observations: 0,
            n_features: 0,
            fitted: false,
        }
    }

    /// Creates an unfitted model with default configuration.
    pub fn with_defaults() -> Self {
        LinearRegression::new(LinearConfig::default())
    }

    /// The fitted coefficients (intercept first when enabled), solving the
    /// normal equations first if updates left them stale. Empty before
    /// fitting.
    pub fn coefficients(&self) -> Vec<f64> {
        self.ensure_solved();
        self.coefficients.read().expect("lock").clone()
    }

    /// The configuration used by this model.
    pub fn config(&self) -> LinearConfig {
        self.config
    }

    /// Number of observations incorporated in the sufficient statistics.
    pub fn n_observations(&self) -> usize {
        self.n_observations
    }

    fn accumulate(&mut self, data: &Dataset) {
        let width = data.n_features() + usize::from(self.config.fit_intercept);
        if self.gram.is_none() {
            self.gram = Some(Matrix::zeros(width, width));
            self.moments = vec![0.0; width];
            self.n_features = data.n_features();
            self.n_observations = 0;
        }
        let gram = self.gram.as_mut().expect("gram initialised above");
        for (features, target) in data.iter() {
            let row = if self.config.fit_intercept {
                let mut r = Vec::with_capacity(features.len() + 1);
                r.push(1.0);
                r.extend_from_slice(features);
                r
            } else {
                features.to_vec()
            };
            for (i, &xi) in row.iter().enumerate() {
                self.moments[i] += xi * target;
                for (j, &xj) in row.iter().enumerate() {
                    gram[(i, j)] += xi * xj;
                }
            }
        }
        self.n_observations += data.len();
    }

    /// Solves the regularised normal equations for the given sufficient
    /// statistics. Does not touch `self` — callers commit the returned
    /// coefficients only on success, which is what makes `fit` transactional.
    fn solve_stats(
        gram: &Matrix,
        moments: &[f64],
        config: LinearConfig,
    ) -> Result<Vec<f64>, ModelError> {
        let mut regularised = gram.clone();
        // Always add at least a tiny ridge term: a task type whose observed
        // input sizes are all identical produces a rank-deficient Gram matrix.
        let lambda = config.l2.max(1e-10);
        regularised.add_diagonal(lambda);
        let coeffs = match regularised.solve(moments) {
            Ok(coeffs) => coeffs,
            Err(_) => {
                // Escalate the regularisation once before giving up; this
                // keeps early-workflow fits (1-2 data points) usable.
                let mut heavier = gram.clone();
                heavier.add_diagonal(lambda.max(1e-3) * 1e3);
                heavier
                    .solve(moments)
                    .map_err(|e| ModelError::Numerical(e.to_string()))?
            }
        };
        // Overflowed Gram entries (inf) sail through elimination without a
        // small pivot and come out as NaN/inf coefficients; treat that as a
        // solve failure rather than serving a poisoned model.
        if coeffs.iter().any(|c| !c.is_finite()) {
            return Err(ModelError::Numerical(
                "normal-equation solve produced non-finite coefficients".to_string(),
            ));
        }
        Ok(coeffs)
    }

    /// Runs the lazy solve if updates left the coefficients stale. If the
    /// solve fails the previous coefficients keep serving (the staleness flag
    /// is still cleared so the hot path does not retry on every predict).
    fn ensure_solved(&self) {
        if !self.coefficients_stale.load(Ordering::Acquire) {
            return;
        }
        let mut coeffs = self.coefficients.write().expect("lock");
        // Double-checked: another thread may have solved while we waited.
        if !self.coefficients_stale.load(Ordering::Acquire) {
            return;
        }
        if let Some(gram) = self.gram.as_ref() {
            if let Ok(solved) = LinearRegression::solve_stats(gram, &self.moments, self.config) {
                *coeffs = solved;
            }
        }
        self.coefficients_stale.store(false, Ordering::Release);
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        // Build the new sufficient statistics on the side and solve before
        // touching any fitted state: a failed refit (e.g. overflowing
        // features) must leave the previous model serving.
        let mut fresh = LinearRegression::new(self.config);
        fresh.accumulate(data);
        let gram = fresh.gram.as_ref().expect("accumulate initialises gram");
        let coeffs = LinearRegression::solve_stats(gram, &fresh.moments, self.config)?;
        self.gram = fresh.gram;
        self.moments = fresh.moments;
        self.n_observations = fresh.n_observations;
        self.n_features = fresh.n_features;
        *self.coefficients.write().expect("lock") = coeffs;
        self.coefficients_stale.store(false, Ordering::Release);
        self.fitted = true;
        Ok(())
    }

    fn partial_fit(&mut self, data: &Dataset) -> Result<(), ModelError> {
        validate_training_data(data)?;
        if self.gram.is_some() && data.n_features() != self.n_features {
            return Err(ModelError::FeatureMismatch {
                expected: self.n_features,
                got: data.n_features(),
            });
        }
        self.accumulate(data);
        // Lazy solve: the exact statistics are up to date, so deferring the
        // O(d^3) solve to the first predict yields bit-identical coefficients
        // while keeping the observe path O(d^2).
        self.coefficients_stale.store(true, Ordering::Release);
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> Result<f64, ModelError> {
        let mut scratch = PredictScratch::default();
        self.predict_with(features, &mut scratch)
    }

    fn predict_with(
        &self,
        features: &[f64],
        scratch: &mut PredictScratch,
    ) -> Result<f64, ModelError> {
        if !self.fitted {
            return Err(ModelError::NotFitted);
        }
        validate_query(features, self.n_features)?;
        self.ensure_solved();
        let coefficients = self.coefficients.read().expect("lock");
        if coefficients.is_empty() {
            // The model has only ever seen failed solves (e.g. its very first
            // update was degenerate) — there is no usable state to serve.
            return Err(ModelError::NotFitted);
        }
        // The augmented row ([1, features…] with an intercept) lives in the
        // caller's scratch buffer; same values as the old `augment`.
        let row = &mut scratch.row;
        row.clear();
        if self.config.fit_intercept {
            row.push(1.0);
        }
        row.extend_from_slice(features);
        Ok(row
            .iter()
            .zip(coefficients.iter())
            .map(|(x, c)| x * c)
            .sum())
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn class(&self) -> ModelClass {
        ModelClass::Linear
    }

    fn clone_box(&self) -> Box<dyn Regressor> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(slope: f64, intercept: f64, n: usize) -> Dataset {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        Dataset::from_univariate(&xs, &ys)
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let data = linear_dataset(3.0, 10.0, 50);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let pred = m.predict(&[100.0]).unwrap();
        assert!((pred - 310.0).abs() < 1e-3, "pred = {pred}");
    }

    #[test]
    fn without_intercept_goes_through_origin() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        let data = Dataset::from_univariate(&xs, &ys);
        let mut m = LinearRegression::new(LinearConfig {
            l2: 0.0,
            fit_intercept: false,
        });
        m.fit(&data).unwrap();
        assert_eq!(m.coefficients().len(), 1);
        assert!((m.predict(&[10.0]).unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn multivariate_fit_recovers_coefficients() {
        // y = 2*x0 - 3*x1 + 5
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x0 = i as f64;
                let x1 = j as f64;
                features.push(vec![x0, x1]);
                targets.push(2.0 * x0 - 3.0 * x1 + 5.0);
            }
        }
        let data = Dataset::from_parts(features, targets);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let pred = m.predict(&[7.0, 11.0]).unwrap();
        assert!((pred - (14.0 - 33.0 + 5.0)).abs() < 1e-3);
    }

    #[test]
    fn partial_fit_matches_full_fit() {
        let data = linear_dataset(2.0, 1.0, 40);
        let (first, second) = data.split_at(20);

        let mut incremental = LinearRegression::with_defaults();
        incremental.fit(&first).unwrap();
        incremental.partial_fit(&second).unwrap();

        let mut full = LinearRegression::with_defaults();
        full.fit(&data).unwrap();

        for x in [0.0, 5.0, 50.0] {
            let a = incremental.predict(&[x]).unwrap();
            let b = full.predict(&[x]).unwrap();
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        assert_eq!(incremental.n_observations(), 40);
    }

    #[test]
    fn single_observation_is_usable() {
        let data = Dataset::from_univariate(&[4.0], &[400.0]);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let pred = m.predict(&[4.0]).unwrap();
        // With heavy rank-deficiency the ridge fallback should still predict
        // something close to the only observed value at the observed input.
        assert!(pred.is_finite());
        assert!(pred > 0.0);
    }

    #[test]
    fn constant_inputs_do_not_fail() {
        let data = Dataset::from_univariate(&[5.0, 5.0, 5.0], &[100.0, 110.0, 90.0]);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let pred = m.predict(&[5.0]).unwrap();
        assert!(pred.is_finite());
        assert!((pred - 100.0).abs() < 20.0);
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = LinearRegression::with_defaults();
        assert!(matches!(m.predict(&[1.0]), Err(ModelError::NotFitted)));
    }

    #[test]
    fn predict_rejects_wrong_width() {
        let data = linear_dataset(1.0, 0.0, 10);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        assert!(matches!(
            m.predict(&[1.0, 2.0]),
            Err(ModelError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn partial_fit_rejects_changed_width() {
        let data = linear_dataset(1.0, 0.0, 10);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let wide = Dataset::from_parts(vec![vec![1.0, 2.0]], vec![3.0]);
        assert!(matches!(
            m.partial_fit(&wide),
            Err(ModelError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn failed_refit_keeps_the_previous_model_serving() {
        let data = linear_dataset(3.0, 10.0, 50);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let before = m.predict(&[100.0]).unwrap();

        // Features large enough that the Gram products overflow to infinity:
        // the inputs themselves are finite (so validation passes) but the
        // solve produces non-finite coefficients and must fail.
        let degenerate = Dataset::from_univariate(&[1e300, 2e300, 3e300], &[1.0, 2.0, 3.0]);
        assert!(m.fit(&degenerate).is_err());

        assert!(m.is_fitted(), "failed refit must not clear fitted state");
        let after = m.predict(&[100.0]).unwrap();
        assert_eq!(
            before.to_bits(),
            after.to_bits(),
            "failed refit must leave predictions untouched"
        );
        assert_eq!(m.n_observations(), 50);
    }

    #[test]
    fn lazy_partial_fit_chain_matches_eager_full_fit_bitwise() {
        let data = linear_dataset(2.5, -4.0, 32);
        let mut lazy = LinearRegression::with_defaults();
        // Interleave updates and predicts: each predict solves lazily at the
        // same Gram state an eager solve would have used.
        for i in 0..data.len() {
            let (row, _) = data.split_at(i + 1);
            let (_, single) = row.split_at(i);
            lazy.partial_fit(&single).unwrap();
            if i % 5 == 0 {
                lazy.predict(&[i as f64]).unwrap();
            }
        }

        let mut eager = LinearRegression::with_defaults();
        eager.fit(&data).unwrap();

        for x in [0.0, 3.0, 17.0, 100.0] {
            let a = lazy.predict(&[x]).unwrap();
            let b = eager.predict(&[x]).unwrap();
            assert!(
                (a - b).abs() < 1e-6,
                "lazy chain diverged from batch fit: {a} vs {b}"
            );
        }
        // The coefficient vectors from the same sufficient statistics must be
        // bit-identical: accumulate over the same rows in the same order.
        let mut replay = LinearRegression::with_defaults();
        replay.partial_fit(&data).unwrap();
        assert_eq!(lazy.coefficients(), replay.coefficients());
    }

    #[test]
    fn clone_box_preserves_predictions() {
        let data = linear_dataset(2.0, 3.0, 30);
        let mut m = LinearRegression::with_defaults();
        m.fit(&data).unwrap();
        let cloned = m.clone_box();
        assert_eq!(
            m.predict(&[12.0]).unwrap(),
            cloned.predict(&[12.0]).unwrap()
        );
        assert_eq!(cloned.class(), ModelClass::Linear);
    }
}
