//! The event-driven cluster scheduler.
//!
//! The paper's evaluation replays one workflow at a time against a capacity
//! sketch that ignores queueing (assumption A2 declares scheduling out of
//! scope). That sketch cannot answer contention questions: when one tenant
//! over-allocates, the cost shows up as *queue delay* for everyone sharing
//! the cluster, not just as GB·h on the over-allocator's bill. This module
//! adds a real discrete-event scheduler:
//!
//! * a virtual clock driven by an [`EventHeap`] of
//!   submissions and completions,
//! * a [`PendingQueue`] where tasks wait when no
//!   node fits — over-allocation now costs makespan,
//! * pluggable [`SchedulePolicy`] variants (first fit, best fit, bounded
//!   backfill),
//! * heterogeneous node pools via
//!   [`SimulationConfig::extra_node_pools`](crate::SimulationConfig),
//! * concurrent multi-workflow replay ([`schedule_workflows`]): several
//!   tenants share one cluster, interleaved by submission time, each with
//!   its own predictor learning online from its own records.
//!
//! Two engines share the cluster model. The *synchronous* [`Scheduler`] is
//! used by [`replay_workflow`](crate::replay::replay_workflow): the replay's
//! sequential predict→observe loop (which fixes the paper's decision
//! ordering, and with it the Fig. 8 aggregates) calls
//! [`Scheduler::run_task`] per attempt and gets back start/finish times and
//! queue delay. The *event-driven* engine underneath [`schedule_workflows`]
//! goes further: predictions happen at submission, observations at
//! completion, and tenants interleave arbitrarily — the decision order is
//! whatever the virtual clock makes it.

use crate::accounting::{AttemptEvent, AttemptSink, RecordSink, ReplayAggregates, ReplayReport};
use crate::cluster::{Cluster, Node};
use crate::config::SimulationConfig;
use crate::faults::{FaultAction, FaultCause};
use crate::inflight::RetryLedger;
use crate::predictor::{AttemptContext, MemoryPredictor, TaskSubmission};
use crate::queue::{EventHeap, PendingQueue, PendingTask};
use crate::replay::MIN_ALLOCATION_BYTES;
use sizey_provenance::{TaskOutcome, TaskRecord};
use sizey_workflows::TaskInstance;
use std::collections::{BTreeMap, HashMap};

/// Scheduling policy for picking when and where a pending task starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// Strict FIFO dispatch; the task is placed on the first node with room.
    FirstFit,
    /// Strict FIFO dispatch; the task is placed on the fitting node with the
    /// least leftover free memory (tightest packing).
    BestFit,
    /// FIFO with backfilling: a task whose resources are free right now may
    /// start ahead of a blocked head-of-queue (aggressive backfill, no
    /// reservation for the head). In the event-driven engine
    /// ([`schedule_workflows`]) the scan behind the head is bounded by
    /// [`SimulationConfig::backfill_window`]; the synchronous
    /// [`Scheduler`] used by `replay_workflow` approximates backfill by
    /// dropping the FIFO start-order constraint entirely — every task
    /// starts as soon as capacity allows at its own submission time.
    Backfill,
}

impl SchedulePolicy {
    /// All policies, in comparison order.
    pub const ALL: [SchedulePolicy; 3] = [
        SchedulePolicy::FirstFit,
        SchedulePolicy::BestFit,
        SchedulePolicy::Backfill,
    ];

    /// Display name for result tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::FirstFit => "first-fit",
            SchedulePolicy::BestFit => "best-fit",
            SchedulePolicy::Backfill => "backfill",
        }
    }

    /// Parses the [`name`](SchedulePolicy::name) form back into a policy
    /// (used by the spec-driven experiment loader).
    pub fn from_name(name: &str) -> Option<Self> {
        SchedulePolicy::ALL
            .into_iter()
            .find(|p| p.name() == name.trim())
    }

    /// Position in [`SchedulePolicy::ALL`] — the canonical comparison order
    /// used for deterministic result-table sorting.
    pub fn comparison_order(&self) -> usize {
        SchedulePolicy::ALL
            .iter()
            .position(|p| p == self)
            .unwrap_or(SchedulePolicy::ALL.len())
    }
}

/// Aggregate scheduler telemetry for one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerStats {
    /// Number of attempts dispatched onto the cluster.
    pub dispatched_attempts: usize,
    /// Sum of all queue delays in seconds.
    pub total_queue_delay_seconds: f64,
    /// Largest single queue delay in seconds.
    pub max_queue_delay_seconds: f64,
    /// High-water mark of concurrently running tasks.
    pub peak_running_tasks: usize,
    /// High-water mark of cluster-wide allocated memory in bytes.
    pub peak_allocated_bytes: f64,
    /// High-water mark of the pending-queue depth.
    pub peak_pending_tasks: usize,
    /// Placements forced past a full cluster (only possible when a caller
    /// bypasses the largest-node clamp; the property suite asserts zero).
    pub forced_placements: usize,
    /// High-water mark of the engine's [`RetryLedger`]: how many tasks were
    /// simultaneously awaiting a retry.
    pub peak_inflight_retries: usize,
    /// Retry-ledger entries still present when the replay drained — leaked
    /// per-task state. Always zero: entries are evicted on success and on
    /// terminal failure alike (the regression suite asserts this for
    /// workloads where *every* task exhausts its attempt budget).
    pub leaked_inflight_retries: usize,
    /// Attempts killed mid-run by fault injection and requeued. A requeued
    /// attempt re-enters the pending queue with an **unchanged** attempt
    /// number and an untouched retry ledger: a fault is not an OOM failure,
    /// so it neither consumes [`SimulationConfig::max_attempts`] budget nor
    /// triggers the predictors' max-then-double escalation.
    pub requeued_attempts: usize,
    /// Subset of `requeued_attempts` whose node crashed (single crash or
    /// storm).
    pub crash_lost_attempts: usize,
    /// Subset of `requeued_attempts` whose node pool was preempted (spot
    /// reclaim).
    pub preempted_attempts: usize,
}

impl SchedulerStats {
    fn record_dispatch(&mut self, queue_delay: f64, cluster: &Cluster) {
        self.dispatched_attempts += 1;
        self.total_queue_delay_seconds += queue_delay;
        self.max_queue_delay_seconds = self.max_queue_delay_seconds.max(queue_delay);
        self.peak_running_tasks = self.peak_running_tasks.max(cluster.running_tasks());
        self.peak_allocated_bytes = self.peak_allocated_bytes.max(cluster.allocated_bytes());
    }

    /// Mean queue delay per dispatched attempt in seconds.
    pub fn mean_queue_delay_seconds(&self) -> f64 {
        if self.dispatched_attempts == 0 {
            0.0
        } else {
            self.total_queue_delay_seconds / self.dispatched_attempts as f64
        }
    }
}

/// Timing of one attempt as decided by the synchronous [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledAttempt {
    /// Virtual time at which the attempt started running.
    pub start_seconds: f64,
    /// Virtual time at which the attempt finishes.
    pub finish_seconds: f64,
    /// Node hosting the attempt.
    pub node: usize,
    /// Time spent waiting for resources (`start - submit`).
    pub queue_delay_seconds: f64,
}

/// A completion in the synchronous engine's running set.
#[derive(Debug, Clone, Copy)]
struct SyncFinish {
    node: usize,
    allocation_bytes: f64,
}

/// The synchronous scheduling core: a virtual clock plus a running set,
/// consumed one task at a time in submission order (FIFO).
///
/// [`Scheduler::run_task`] answers "given everything scheduled so far, when
/// does this task start and where?". Tasks wait when no node fits — the
/// clock advances to completions until capacity frees up — so memory
/// over-allocation directly costs makespan. `FirstFit`/`BestFit` keep strict
/// FIFO start-order (a task never starts before an earlier-submitted one);
/// `Backfill` lets a task start at its own submission time when capacity is
/// already free, jumping the FIFO floor.
#[derive(Debug, Clone)]
pub struct Scheduler {
    cluster: Cluster,
    policy: SchedulePolicy,
    running: EventHeap<SyncFinish>,
    /// Start time of the most recently dispatched task (the FIFO floor).
    fifo_floor: f64,
    stats: SchedulerStats,
}

impl Scheduler {
    /// Builds a scheduler over the cluster described by `config`.
    pub fn new(config: &SimulationConfig) -> Self {
        let cluster = Cluster::new(config);
        assert!(
            cluster.node_count() > 0,
            "simulation config describes a cluster with no nodes"
        );
        Scheduler {
            cluster,
            policy: config.policy,
            running: EventHeap::new(),
            fifo_floor: 0.0,
            stats: SchedulerStats::default(),
        }
    }

    /// Schedules one task: finds the earliest start time at or after
    /// `submit_time_seconds` when a node can host `allocation_bytes`, places
    /// it there for `duration_seconds`, and returns the timing.
    ///
    /// `allocation_bytes` must not exceed the largest node's capacity (the
    /// replay engine clamps before calling); an unplaceable task is forced
    /// onto node 0 and counted in [`SchedulerStats::forced_placements`]
    /// rather than looping forever.
    pub fn run_task(
        &mut self,
        submit_time_seconds: f64,
        allocation_bytes: f64,
        duration_seconds: f64,
    ) -> ScheduledAttempt {
        let respect_floor = self.policy != SchedulePolicy::Backfill;
        self.schedule(
            submit_time_seconds,
            allocation_bytes,
            duration_seconds,
            respect_floor,
            respect_floor,
        )
    }

    /// Schedules a **requeued** (retry) attempt. Retries re-enter the queue
    /// with their original priority — standard resource-manager behaviour —
    /// so they neither wait behind the FIFO floor nor raise it for
    /// first-submission tasks; they only wait for actual capacity.
    pub fn run_retry(
        &mut self,
        submit_time_seconds: f64,
        allocation_bytes: f64,
        duration_seconds: f64,
    ) -> ScheduledAttempt {
        self.schedule(
            submit_time_seconds,
            allocation_bytes,
            duration_seconds,
            false,
            false,
        )
    }

    fn schedule(
        &mut self,
        submit_time_seconds: f64,
        allocation_bytes: f64,
        duration_seconds: f64,
        respect_floor: bool,
        update_floor: bool,
    ) -> ScheduledAttempt {
        let mut t = if respect_floor {
            // FIFO: a first-submission task never starts before one
            // submitted ahead of it. (Backfill relaxes this: a task may
            // start at its own submission time when capacity is free.)
            submit_time_seconds.max(self.fifo_floor)
        } else {
            submit_time_seconds
        };
        self.release_until(t);

        let node = loop {
            if let Some(n) = self.cluster.select_node(allocation_bytes, self.policy) {
                break n;
            }
            match self.running.pop() {
                Some((finish, done)) => {
                    t = t.max(finish);
                    self.cluster.release(
                        crate::cluster::Placement { node: done.node },
                        done.allocation_bytes,
                    );
                }
                None => {
                    // Even an empty cluster cannot host this allocation —
                    // the caller bypassed the largest-node clamp. Force it
                    // through so the replay still terminates.
                    self.stats.forced_placements += 1;
                    break 0;
                }
            }
        };

        self.cluster.place_on(node, allocation_bytes);
        if update_floor {
            self.fifo_floor = self.fifo_floor.max(t);
        }
        let finish = t + duration_seconds;
        self.running.push(
            finish,
            SyncFinish {
                node,
                allocation_bytes,
            },
        );
        let queue_delay = (t - submit_time_seconds).max(0.0);
        self.stats.record_dispatch(queue_delay, &self.cluster);
        ScheduledAttempt {
            start_seconds: t,
            finish_seconds: finish,
            node,
            queue_delay_seconds: queue_delay,
        }
    }

    /// Releases every task that finishes at or before `time`.
    fn release_until(&mut self, time: f64) {
        while self.running.peek_time().is_some_and(|t| t <= time) {
            let (_, done) = self.running.pop().expect("peeked event exists");
            self.cluster.release(
                crate::cluster::Placement { node: done.node },
                done.allocation_bytes,
            );
        }
    }

    /// Number of currently running tasks.
    pub fn running_tasks(&self) -> usize {
        self.cluster.running_tasks()
    }

    /// The cluster state (including per-node high-water marks).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Scheduler telemetry collected so far.
    pub fn stats(&self) -> &SchedulerStats {
        &self.stats
    }
}

/// One workflow sharing the cluster in a multi-tenant replay: its task
/// instances, the sizing method making its allocation decisions, and the
/// virtual time at which it starts submitting.
pub struct WorkflowTenant {
    /// Workflow (tenant) name used in the per-tenant report.
    pub workflow: String,
    /// Task instances in submission order.
    pub instances: Vec<TaskInstance>,
    /// The sizing method deciding this tenant's allocations.
    pub predictor: Box<dyn MemoryPredictor>,
    /// Virtual time at which the tenant's first task arrives.
    pub arrival_offset_seconds: f64,
}

impl WorkflowTenant {
    /// Creates a tenant arriving at time zero.
    pub fn new(
        workflow: impl Into<String>,
        instances: Vec<TaskInstance>,
        predictor: Box<dyn MemoryPredictor>,
    ) -> Self {
        WorkflowTenant {
            workflow: workflow.into(),
            instances,
            predictor,
            arrival_offset_seconds: 0.0,
        }
    }

    /// Returns the tenant with a different arrival offset.
    pub fn with_arrival_offset(mut self, seconds: f64) -> Self {
        self.arrival_offset_seconds = seconds;
        self
    }
}

/// Result of a multi-tenant replay: one [`ReplayReport`] per tenant plus
/// cluster-wide telemetry.
#[derive(Debug)]
pub struct MultiReplayReport {
    /// Per-tenant reports, in the order the tenants were passed in.
    pub reports: Vec<ReplayReport>,
    /// End of the last attempt across all tenants, in seconds.
    pub makespan_seconds: f64,
    /// Cluster-wide scheduler telemetry.
    pub stats: SchedulerStats,
    /// Final node states, including per-node allocation/slot high-water
    /// marks (the property suite asserts `peak ≤ capacity` per node).
    pub nodes: Vec<Node>,
}

/// Payload of a queued attempt in the event-driven engine.
#[derive(Debug, Clone)]
struct QueuedAttempt {
    tenant: usize,
    instance: usize,
    attempt: u32,
    allocation_bytes: f64,
    raw_estimate_bytes: Option<f64>,
    selected_model: Option<String>,
    success: bool,
    duration_seconds: f64,
}

/// Payload of a completion event in the event-driven engine.
#[derive(Debug, Clone)]
struct RunningAttempt {
    task: QueuedAttempt,
    node: usize,
    submit_time: f64,
    start_time: f64,
    concurrent_at_start: usize,
    /// Ticket into the running registry; a Finish whose ticket is gone
    /// belongs to an attempt a fault already killed (stale completion).
    dispatch_id: u64,
}

/// An event in the multi-tenant engine.
#[derive(Debug)]
enum Event {
    /// A task attempt enters the pending queue.
    Submit {
        tenant: usize,
        instance: usize,
        attempt: u32,
    },
    /// A running attempt completes and releases its resources.
    Finish(RunningAttempt),
    /// A fault-injection action fires (node down/up, task kills).
    Fault(FaultAction),
}

/// What the running registry remembers about a dispatched attempt — enough
/// to release its resources and requeue it if a fault kills it.
#[derive(Debug, Clone, Copy)]
struct RunningRef {
    tenant: usize,
    instance: usize,
    attempt: u32,
    node: usize,
    allocation_bytes: f64,
}

/// Registry of currently running attempts keyed by a monotonically
/// increasing dispatch id. Fault events drain victims in dispatch order
/// (deterministic and identical in both engines); a completion whose id is
/// absent is stale — its attempt was fault-killed, released and requeued
/// when the fault fired.
#[derive(Debug, Default)]
struct RunningRegistry {
    map: BTreeMap<u64, RunningRef>,
    next_id: u64,
}

impl RunningRegistry {
    fn insert(&mut self, entry: RunningRef) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.map.insert(id, entry);
        id
    }

    /// Removes an entry on completion; `None` flags a stale completion of a
    /// fault-killed attempt.
    fn finish(&mut self, id: u64) -> Option<RunningRef> {
        self.map.remove(&id)
    }

    /// Drains every attempt running on `node`, oldest dispatch first.
    fn drain_node(&mut self, node: usize) -> Vec<RunningRef> {
        let ids: Vec<u64> = self
            .map
            .iter()
            .filter(|(_, r)| r.node == node)
            .map(|(&id, _)| id)
            .collect();
        ids.iter().filter_map(|id| self.map.remove(id)).collect()
    }

    /// Drains the `count` oldest running attempts.
    fn drain_oldest(&mut self, count: usize) -> Vec<RunningRef> {
        let ids: Vec<u64> = self.map.keys().take(count).copied().collect();
        ids.iter().filter_map(|id| self.map.remove(id)).collect()
    }
}

/// Applies one fault action at virtual time `now`, identically in both
/// event-driven engines. Killed attempts have their resources released and
/// are requeued as Submit events at `now` with an **unchanged** attempt
/// number; the retry ledger is deliberately left untouched, so a fault kill
/// neither consumes attempt budget nor looks like an OOM to the predictors.
fn apply_fault(
    action: FaultAction,
    now: f64,
    cluster: &mut Cluster,
    running: &mut RunningRegistry,
    events: &mut EventHeap<Event>,
    stats: &mut SchedulerStats,
) {
    let (killed, cause) = match action {
        FaultAction::NodeDown { node, cause } => {
            cluster.set_offline(node, true);
            (running.drain_node(node), Some(cause))
        }
        FaultAction::NodeUp { node } => {
            cluster.set_offline(node, false);
            (Vec::new(), None)
        }
        FaultAction::KillTasks { tasks } => (running.drain_oldest(tasks), None),
    };
    for r in killed {
        cluster.release(
            crate::cluster::Placement { node: r.node },
            r.allocation_bytes,
        );
        events.push(
            now,
            Event::Submit {
                tenant: r.tenant,
                instance: r.instance,
                attempt: r.attempt,
            },
        );
        stats.requeued_attempts += 1;
        match cause {
            Some(FaultCause::Crash) => stats.crash_lost_attempts += 1,
            Some(FaultCause::Preemption) => stats.preempted_attempts += 1,
            None => {}
        }
    }
}

/// Replays several workflows **concurrently** against one shared cluster.
///
/// Tenants submit their task instances over virtual time (offset plus
/// [`SimulationConfig::submit_interval_seconds`] between consecutive
/// instances; simultaneous arrivals interleave round-robin). Each attempt is
/// sized by its tenant's predictor at submission, waits in the pending queue
/// until the scheduling policy grants it a node, runs, and feeds its
/// provenance record (including the experienced queue delay) back to the
/// predictor at completion. Failed attempts are resubmitted until they
/// succeed or exhaust [`SimulationConfig::max_attempts`].
///
/// Because allocations are fixed at submission, online methods only benefit
/// from completions that happen *before* a task arrives: with the default
/// `submit_interval_seconds = 0.0` every first attempt is sized cold. Spread
/// arrivals with a positive interval to replay an online-learning scenario.
///
/// This is the entry point for contention studies: memory over-allocation by
/// one tenant delays every tenant's start times and stretches the shared
/// makespan.
///
/// ```
/// use sizey_sim::{schedule_workflows, PresetPredictor, SimulationConfig, WorkflowTenant};
/// use sizey_workflows::{generate_workflow, profiles, GeneratorConfig};
///
/// let make = |seed| generate_workflow(&profiles::iwd(), &GeneratorConfig::scaled(0.02, seed));
/// let tenants = vec![
///     WorkflowTenant::new("iwd-a", make(1), Box::new(PresetPredictor)),
///     WorkflowTenant::new("iwd-b", make(2), Box::new(PresetPredictor))
///         .with_arrival_offset(1800.0),
/// ];
/// let result = schedule_workflows(tenants, &SimulationConfig::default());
/// assert_eq!(result.reports.len(), 2);
/// assert!(result.makespan_seconds > 1800.0);
/// assert_eq!(result.stats.forced_placements, 0);
/// ```
pub fn schedule_workflows(
    mut tenants: Vec<WorkflowTenant>,
    config: &SimulationConfig,
) -> MultiReplayReport {
    let mut cluster = Cluster::new(config);
    assert!(
        cluster.node_count() > 0,
        "simulation config describes a cluster with no nodes"
    );
    let largest_node = cluster.largest_node_memory_bytes();
    let mut events: EventHeap<Event> = EventHeap::new();
    let mut pending: PendingQueue<QueuedAttempt> = PendingQueue::new();
    let mut stats = SchedulerStats::default();
    let mut makespan = 0.0_f64;
    // Engine-owned retry state, keyed by (tenant, instance): the allocation
    // the previous failed attempt ran with. Entries are evicted on success
    // and on terminal failure alike, so the ledger drains to empty with the
    // event heap.
    let mut retries: RetryLedger<(usize, usize)> = RetryLedger::new();
    let mut running = RunningRegistry::default();

    let mut tenant_events: Vec<Vec<AttemptEvent>> = tenants.iter().map(|_| Vec::new()).collect();
    let mut unfinished: Vec<usize> = vec![0; tenants.len()];

    // Seed the submission events, round-robin across tenants so simultaneous
    // arrivals interleave fairly instead of draining tenant 0 first.
    let max_len = tenants.iter().map(|t| t.instances.len()).max().unwrap_or(0);
    for idx in 0..max_len {
        for (ti, tenant) in tenants.iter().enumerate() {
            if idx < tenant.instances.len() {
                let time =
                    tenant.arrival_offset_seconds + idx as f64 * config.submit_interval_seconds;
                events.push(
                    time,
                    Event::Submit {
                        tenant: ti,
                        instance: idx,
                        attempt: 0,
                    },
                );
            }
        }
    }

    // Fault events enter the heap *after* the seeded first-submits (arrivals
    // win time-ties against faults, in both engines) and *before* anything
    // the run itself pushes (faults win time-ties against completions and
    // retries — again in both engines, since the streaming engine also
    // seeds them before its main loop).
    if let Some(plan) = &config.faults {
        for fe in plan.compile(config) {
            events.push(fe.time_seconds, Event::Fault(fe.action));
        }
    }

    // Dispatches every queued task the policy allows at virtual time `now`.
    let try_dispatch = |now: f64,
                        cluster: &mut Cluster,
                        pending: &mut PendingQueue<QueuedAttempt>,
                        events: &mut EventHeap<Event>,
                        stats: &mut SchedulerStats,
                        tenant_events: &mut [Vec<AttemptEvent>],
                        tenants: &[WorkflowTenant],
                        running: &mut RunningRegistry| {
        loop {
            // Head of the queue first: every policy dispatches it if it fits.
            let head_node = pending
                .front()
                .and_then(|t| cluster.select_node(t.allocation_bytes, config.policy));
            let picked = if let Some(node) = head_node {
                Some((0, node))
            } else if config.policy == SchedulePolicy::Backfill {
                // Head blocked: scan a bounded window behind it for a task
                // that fits right now.
                pending
                    .iter()
                    .enumerate()
                    .skip(1)
                    .take(config.backfill_window)
                    .find_map(|(idx, t)| {
                        cluster
                            .select_node(t.allocation_bytes, config.policy)
                            .map(|node| (idx, node))
                    })
            } else {
                None
            };
            let Some((idx, node)) = picked else { break };
            let queued = pending.remove(idx).expect("picked index exists");
            dispatch(
                queued,
                node,
                now,
                cluster,
                events,
                stats,
                tenant_events,
                tenants,
                running,
            );
        }
    };

    while let Some((now, event)) = events.pop() {
        match event {
            Event::Submit {
                tenant: ti,
                instance,
                attempt,
            } => {
                let tenant = &mut tenants[ti];
                let inst = &tenant.instances[instance];
                let true_peak = inst.true_peak_bytes;
                let base_runtime = inst.base_runtime_seconds;
                let submission = TaskSubmission {
                    workflow: inst.workflow.clone(),
                    task_type: inst.task_type.clone(),
                    machine: inst.machine.clone(),
                    sequence: inst.sequence,
                    input_bytes: inst.input_bytes,
                    preset_memory_bytes: inst.preset_memory_bytes,
                };
                let ctx = AttemptContext {
                    attempt,
                    last_allocation_bytes: retries.last_allocation((ti, instance)),
                };
                let prediction = tenant.predictor.predict(&submission, ctx);
                let allocation = prediction
                    .allocation_bytes
                    .clamp(MIN_ALLOCATION_BYTES, largest_node);
                let success = allocation + 1e-6 >= true_peak;
                let duration = if success {
                    base_runtime
                } else {
                    base_runtime * config.time_to_failure
                };
                let queued = PendingTask {
                    submit_time: now,
                    allocation_bytes: allocation,
                    payload: QueuedAttempt {
                        tenant: ti,
                        instance,
                        attempt,
                        allocation_bytes: allocation,
                        raw_estimate_bytes: prediction.raw_estimate_bytes,
                        selected_model: prediction.selected_model.map(String::from),
                        success,
                        duration_seconds: duration,
                    },
                };
                if attempt == 0 {
                    pending.push_back(queued);
                } else {
                    // Retries re-enter with their original priority (head of
                    // the queue), matching the synchronous engine's
                    // `run_retry` semantics.
                    pending.push_front(queued);
                }
                try_dispatch(
                    now,
                    &mut cluster,
                    &mut pending,
                    &mut events,
                    &mut stats,
                    &mut tenant_events,
                    &tenants,
                    &mut running,
                );
            }
            // A Finish whose dispatch ticket is gone is the stale completion
            // of a fault-killed attempt: its resources were released and it
            // was requeued when the fault fired — ignore it.
            Event::Finish(run) if running.finish(run.dispatch_id).is_some() => {
                cluster.release(
                    crate::cluster::Placement { node: run.node },
                    run.task.allocation_bytes,
                );
                makespan = makespan.max(now);
                let ti = run.task.tenant;
                let inst = &tenants[ti].instances[run.task.instance];
                let record = TaskRecord {
                    workflow: tenants[ti].workflow.clone(),
                    task_type: inst.task_type.clone(),
                    machine: inst.machine.clone(),
                    sequence: inst.sequence,
                    input_bytes: inst.input_bytes,
                    peak_memory_bytes: if run.task.success {
                        inst.true_peak_bytes
                    } else {
                        run.task.allocation_bytes
                    },
                    allocated_memory_bytes: run.task.allocation_bytes,
                    runtime_seconds: run.task.duration_seconds,
                    concurrent_tasks: run.concurrent_at_start as u32,
                    queue_delay_seconds: run.start_time - run.submit_time,
                    outcome: if run.task.success {
                        TaskOutcome::Succeeded
                    } else {
                        TaskOutcome::FailedOutOfMemory
                    },
                };
                tenants[ti].predictor.observe(&record);
                if run.task.success {
                    // Terminal state: retire any pending retry baseline.
                    retries.finish((ti, run.task.instance));
                } else {
                    let next_attempt = run.task.attempt + 1;
                    if next_attempt < config.max_attempts {
                        retries.record_failure((ti, run.task.instance), run.task.allocation_bytes);
                        events.push(
                            now,
                            Event::Submit {
                                tenant: ti,
                                instance: run.task.instance,
                                attempt: next_attempt,
                            },
                        );
                    } else {
                        // Attempt budget exhausted: equally terminal. Before
                        // the split-API refactor this path leaked the task's
                        // in-flight allocation entry forever.
                        retries.finish((ti, run.task.instance));
                        unfinished[ti] += 1;
                    }
                }
                try_dispatch(
                    now,
                    &mut cluster,
                    &mut pending,
                    &mut events,
                    &mut stats,
                    &mut tenant_events,
                    &tenants,
                    &mut running,
                );
            }
            Event::Finish(_) => {}
            Event::Fault(action) => {
                apply_fault(
                    action,
                    now,
                    &mut cluster,
                    &mut running,
                    &mut events,
                    &mut stats,
                );
                try_dispatch(
                    now,
                    &mut cluster,
                    &mut pending,
                    &mut events,
                    &mut stats,
                    &mut tenant_events,
                    &tenants,
                    &mut running,
                );
            }
        }

        // Defensive: a drained event heap with tasks still pending means the
        // head can never fit (caller bypassed the clamp). Force it through
        // so the replay terminates.
        if events.is_empty() && !pending.is_empty() {
            let queued = pending.remove(0).expect("non-empty queue");
            stats.forced_placements += 1;
            dispatch(
                queued,
                0,
                makespan,
                &mut cluster,
                &mut events,
                &mut stats,
                &mut tenant_events,
                &tenants,
                &mut running,
            );
        }
    }

    stats.peak_pending_tasks = pending.peak_len();
    stats.peak_inflight_retries = retries.peak_entries();
    stats.leaked_inflight_retries = retries.len();
    debug_assert_eq!(
        stats.leaked_inflight_retries, 0,
        "every task reaches a terminal state, so the retry ledger must drain"
    );

    let reports = tenants
        .iter()
        .zip(tenant_events)
        .zip(unfinished)
        .map(|((tenant, events), unfinished_instances)| {
            let tenant_makespan = events
                .iter()
                .map(|e| e.submit_time_seconds + e.duration_seconds)
                .fold(0.0, f64::max);
            ReplayReport {
                method: tenant.predictor.name(),
                workflow: tenant.workflow.clone(),
                time_to_failure: config.time_to_failure,
                events,
                instances: tenant.instances.len(),
                unfinished_instances,
                makespan_seconds: tenant_makespan,
            }
        })
        .collect();

    MultiReplayReport {
        reports,
        makespan_seconds: makespan,
        stats,
        nodes: cluster.nodes().to_vec(),
    }
}

/// Starts a queued attempt on `node` at virtual time `now`: places it,
/// records the attempt event for its tenant, and schedules its completion.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    queued: PendingTask<QueuedAttempt>,
    node: usize,
    now: f64,
    cluster: &mut Cluster,
    events: &mut EventHeap<Event>,
    stats: &mut SchedulerStats,
    tenant_events: &mut [Vec<AttemptEvent>],
    tenants: &[WorkflowTenant],
    running: &mut RunningRegistry,
) {
    let mut task = queued.payload;
    cluster.place_on(node, task.allocation_bytes);
    let queue_delay = (now - queued.submit_time).max(0.0);
    stats.record_dispatch(queue_delay, cluster);
    let inst = &tenants[task.tenant].instances[task.instance];
    let wasted_bytes = if task.success {
        (task.allocation_bytes - inst.true_peak_bytes).max(0.0)
    } else {
        task.allocation_bytes
    };
    tenant_events[task.tenant].push(AttemptEvent {
        task_type: inst.task_type.clone(),
        sequence: inst.sequence,
        attempt: task.attempt,
        allocated_bytes: task.allocation_bytes,
        true_peak_bytes: inst.true_peak_bytes,
        duration_seconds: task.duration_seconds,
        success: task.success,
        wastage_gbh: wasted_bytes / 1e9 * task.duration_seconds / 3600.0,
        raw_estimate_bytes: task.raw_estimate_bytes,
        // Moved, not cloned: nothing downstream of the attempt event reads
        // the queued attempt's model name again.
        selected_model: task.selected_model.take(),
        submit_time_seconds: now,
        queue_delay_seconds: queue_delay,
    });
    let concurrent = cluster.running_tasks();
    let dispatch_id = running.insert(RunningRef {
        tenant: task.tenant,
        instance: task.instance,
        attempt: task.attempt,
        node,
        allocation_bytes: task.allocation_bytes,
    });
    events.push(
        now + task.duration_seconds,
        Event::Finish(RunningAttempt {
            node,
            submit_time: queued.submit_time,
            start_time: now,
            concurrent_at_start: concurrent,
            task,
            dispatch_id,
        }),
    );
}

/// One workflow sharing the cluster in a **streaming** multi-tenant replay:
/// like [`WorkflowTenant`], but task instances are produced lazily by an
/// iterator (e.g. [`stream_workflow`](sizey_workflows::stream_workflow))
/// instead of a materialised `Vec`, so a million-instance tenant costs a few
/// in-flight instances of memory rather than the whole workload.
pub struct StreamingTenant {
    /// Workflow (tenant) name used in the per-tenant report.
    pub workflow: String,
    /// Lazily produced task instances, in submission order.
    pub instances: Box<dyn Iterator<Item = TaskInstance>>,
    /// The sizing method deciding this tenant's allocations.
    pub predictor: Box<dyn MemoryPredictor>,
    /// Virtual time at which the tenant's first task arrives.
    pub arrival_offset_seconds: f64,
}

impl StreamingTenant {
    /// Creates a streaming tenant arriving at time zero.
    pub fn new(
        workflow: impl Into<String>,
        instances: impl Iterator<Item = TaskInstance> + 'static,
        predictor: Box<dyn MemoryPredictor>,
    ) -> Self {
        StreamingTenant {
            workflow: workflow.into(),
            instances: Box::new(instances),
            predictor,
            arrival_offset_seconds: 0.0,
        }
    }

    /// Returns the tenant with a different arrival offset.
    pub fn with_arrival_offset(mut self, seconds: f64) -> Self {
        self.arrival_offset_seconds = seconds;
        self
    }
}

impl From<WorkflowTenant> for StreamingTenant {
    /// Wraps a materialised tenant; the differential harness replays the
    /// same workload through both engines this way.
    fn from(tenant: WorkflowTenant) -> Self {
        StreamingTenant {
            workflow: tenant.workflow,
            instances: Box::new(tenant.instances.into_iter()),
            predictor: tenant.predictor,
            arrival_offset_seconds: tenant.arrival_offset_seconds,
        }
    }
}

/// Per-tenant result of a streaming multi-tenant replay: the online
/// aggregates stand in for the materialised event list.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingTenantReport {
    /// Workflow (tenant) name.
    pub workflow: String,
    /// Name of the sizing method.
    pub method: String,
    /// Online aggregates, bit-identical to
    /// [`ReplayAggregates::from_report`] over the materialised engine's
    /// report for the same workload.
    pub aggregates: ReplayAggregates,
}

/// Result of a streaming multi-tenant replay ([`schedule_workflows_streaming`]).
#[derive(Debug)]
pub struct StreamingReplayReport {
    /// Per-tenant reports, in the order the tenants were passed in.
    pub reports: Vec<StreamingTenantReport>,
    /// End of the last attempt across all tenants, in seconds.
    pub makespan_seconds: f64,
    /// Cluster-wide scheduler telemetry (identical to the materialised
    /// engine's for the same workload).
    pub stats: SchedulerStats,
    /// Final node states, including per-node high-water marks.
    pub nodes: Vec<Node>,
    /// High-water mark of simultaneously in-flight task instances — the
    /// streaming engine's working set (arrived but not yet terminal).
    pub peak_inflight_instances: usize,
    /// In-flight instances still resident when the replay drained. Always
    /// zero: instances are evicted on success and on terminal failure alike.
    pub leaked_inflight_instances: usize,
}

/// Replays several workflows concurrently against one shared cluster,
/// **streaming**: task instances are pulled from each tenant's iterator as
/// virtual time reaches their arrival, held only while in flight, and
/// dropped at their terminal state. Attempt events fold into per-tenant
/// [`ReplayAggregates`] online and are offered to `sink`; finished
/// provenance records (the exact records fed to `observe`) are offered to
/// `records`. With [`NullSink`](crate::NullSink) /
/// [`NullRecordSink`](crate::NullRecordSink) the engine's memory is bounded
/// by the in-flight working set, independent of total workload size.
///
/// The scheduling decisions are **bit-identical** to
/// [`schedule_workflows`] on the same workload: arrivals are injected in
/// exactly the order the materialised engine's seeded submit events pop
/// (time, then arrival index, then tenant index — and arrivals win ties
/// against completions/retries, which the materialised engine guarantees by
/// seeding first-submits before any retry is pushed). The differential
/// harness pins aggregates, telemetry, node peaks and makespan equal across
/// both engines.
///
/// ```
/// use sizey_sim::{
///     schedule_workflows_streaming, NullRecordSink, NullSink, PresetPredictor,
///     SimulationConfig, StreamingTenant,
/// };
/// use sizey_workflows::{profiles, stream_workflow, GeneratorConfig};
///
/// let make = |seed| stream_workflow(&profiles::iwd(), &GeneratorConfig::scaled(0.02, seed));
/// let tenants = vec![
///     StreamingTenant::new("iwd-a", make(1), Box::new(PresetPredictor)),
///     StreamingTenant::new("iwd-b", make(2), Box::new(PresetPredictor))
///         .with_arrival_offset(1800.0),
/// ];
/// let result = schedule_workflows_streaming(
///     tenants,
///     &SimulationConfig::default(),
///     &mut NullSink,
///     &mut NullRecordSink,
/// );
/// assert_eq!(result.reports.len(), 2);
/// assert_eq!(result.leaked_inflight_instances, 0);
/// assert_eq!(result.stats.forced_placements, 0);
/// ```
pub fn schedule_workflows_streaming(
    mut tenants: Vec<StreamingTenant>,
    config: &SimulationConfig,
    sink: &mut dyn AttemptSink,
    records: &mut dyn RecordSink,
) -> StreamingReplayReport {
    let mut cluster = Cluster::new(config);
    assert!(
        cluster.node_count() > 0,
        "simulation config describes a cluster with no nodes"
    );
    let largest_node = cluster.largest_node_memory_bytes();
    let mut events: EventHeap<Event> = EventHeap::new();
    let mut pending: PendingQueue<QueuedAttempt> = PendingQueue::new();
    let mut stats = SchedulerStats::default();
    let mut makespan = 0.0_f64;
    let mut retries: RetryLedger<(usize, usize)> = RetryLedger::new();
    let mut running = RunningRegistry::default();
    let mut aggs: Vec<ReplayAggregates> = tenants.iter().map(|_| ReplayAggregates::new()).collect();

    // Same relative order as the materialised engine: faults enter the heap
    // before the run pushes any completion or retry (so faults win those
    // time-ties), while arrivals win time-ties against heap events below.
    if let Some(plan) = &config.faults {
        for fe in plan.compile(config) {
            events.push(fe.time_seconds, Event::Fault(fe.action));
        }
    }

    // Arrival frontier: the next not-yet-arrived instance of each tenant,
    // pulled eagerly so "does this tenant have more work?" is answerable
    // without consuming. Holds at most one instance per tenant.
    let mut next_idx: Vec<usize> = vec![0; tenants.len()];
    let mut peeked: Vec<Option<TaskInstance>> =
        tenants.iter_mut().map(|t| t.instances.next()).collect();
    // Instances between arrival and terminal state — the engine's working
    // set. Evicted on success and on terminal failure alike, together with
    // the retry ledger entry.
    let mut inflight: HashMap<(usize, usize), TaskInstance> = HashMap::new();
    let mut peak_inflight = 0usize;

    // The earliest pending arrival as (time, tenant): minimal by
    // (time, arrival index, tenant index) — exactly the order the
    // materialised engine's idx-major seeding loop assigns heap sequence
    // numbers, so same-time arrivals inject in the same relative order.
    let next_arrival = |peeked: &[Option<TaskInstance>],
                        next_idx: &[usize],
                        tenants: &[StreamingTenant]|
     -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize, usize)> = None;
        for (ti, slot) in peeked.iter().enumerate() {
            if slot.is_none() {
                continue;
            }
            let idx = next_idx[ti];
            let time =
                tenants[ti].arrival_offset_seconds + idx as f64 * config.submit_interval_seconds;
            let better = match best {
                None => true,
                Some((bt, bidx, _)) => time < bt || (time == bt && idx < bidx),
            };
            if better {
                best = Some((time, idx, ti));
            }
        }
        best.map(|(time, _, ti)| (time, ti))
    };

    loop {
        let arrival = next_arrival(&peeked, &next_idx, &tenants);
        // Arrivals win time-ties against heap events (completions/retries):
        // in the materialised engine every first-submit is seeded before any
        // Finish/retry is pushed, so its heap sequence number is lower and
        // it pops first on equal times.
        let take_arrival = match (arrival, events.peek_time()) {
            (Some((at, _)), Some(ht)) => at <= ht,
            (Some(_), None) => true,
            (None, _) => false,
        };

        if take_arrival {
            let (at, ti) = arrival.expect("checked above");
            let idx = next_idx[ti];
            let inst = peeked[ti].take().expect("arrival has an instance");
            peeked[ti] = tenants[ti].instances.next();
            next_idx[ti] += 1;
            inflight.insert((ti, idx), inst);
            peak_inflight = peak_inflight.max(inflight.len());
            submit_streaming(
                at,
                ti,
                idx,
                0,
                &mut tenants,
                &inflight,
                &retries,
                &mut pending,
                largest_node,
                config,
            );
            try_dispatch_streaming(
                at,
                config,
                &mut cluster,
                &mut pending,
                &mut events,
                &mut stats,
                &mut aggs,
                sink,
                &inflight,
                &mut running,
            );
        } else if let Some((now, event)) = events.pop() {
            match event {
                Event::Submit {
                    tenant: ti,
                    instance,
                    attempt,
                } => {
                    submit_streaming(
                        now,
                        ti,
                        instance,
                        attempt,
                        &mut tenants,
                        &inflight,
                        &retries,
                        &mut pending,
                        largest_node,
                        config,
                    );
                    try_dispatch_streaming(
                        now,
                        config,
                        &mut cluster,
                        &mut pending,
                        &mut events,
                        &mut stats,
                        &mut aggs,
                        sink,
                        &inflight,
                        &mut running,
                    );
                }
                // Stale completion of a fault-killed attempt: released and
                // requeued when the fault fired — ignore it.
                Event::Finish(run) if running.finish(run.dispatch_id).is_some() => {
                    cluster.release(
                        crate::cluster::Placement { node: run.node },
                        run.task.allocation_bytes,
                    );
                    makespan = makespan.max(now);
                    let ti = run.task.tenant;
                    let key = (ti, run.task.instance);
                    let inst = &inflight[&key];
                    let record = TaskRecord {
                        workflow: tenants[ti].workflow.clone(),
                        task_type: inst.task_type.clone(),
                        machine: inst.machine.clone(),
                        sequence: inst.sequence,
                        input_bytes: inst.input_bytes,
                        peak_memory_bytes: if run.task.success {
                            inst.true_peak_bytes
                        } else {
                            run.task.allocation_bytes
                        },
                        allocated_memory_bytes: run.task.allocation_bytes,
                        runtime_seconds: run.task.duration_seconds,
                        concurrent_tasks: run.concurrent_at_start as u32,
                        queue_delay_seconds: run.start_time - run.submit_time,
                        outcome: if run.task.success {
                            TaskOutcome::Succeeded
                        } else {
                            TaskOutcome::FailedOutOfMemory
                        },
                    };
                    records.record(&record);
                    tenants[ti].predictor.observe(&record);
                    if run.task.success {
                        // Terminal state: retire the retry baseline and the
                        // in-flight instance together.
                        retries.finish(key);
                        inflight.remove(&key);
                        aggs[ti].observe_instance(true);
                    } else {
                        let next_attempt = run.task.attempt + 1;
                        if next_attempt < config.max_attempts {
                            retries.record_failure(key, run.task.allocation_bytes);
                            events.push(
                                now,
                                Event::Submit {
                                    tenant: ti,
                                    instance: run.task.instance,
                                    attempt: next_attempt,
                                },
                            );
                        } else {
                            // Attempt budget exhausted: equally terminal, so
                            // the instance must leave the working set *now* —
                            // a stranded entry here is a leak the regression
                            // suite would catch at scale.
                            retries.finish(key);
                            inflight.remove(&key);
                            aggs[ti].observe_instance(false);
                        }
                    }
                    try_dispatch_streaming(
                        now,
                        config,
                        &mut cluster,
                        &mut pending,
                        &mut events,
                        &mut stats,
                        &mut aggs,
                        sink,
                        &inflight,
                        &mut running,
                    );
                }
                Event::Finish(_) => {}
                Event::Fault(action) => {
                    apply_fault(
                        action,
                        now,
                        &mut cluster,
                        &mut running,
                        &mut events,
                        &mut stats,
                    );
                    try_dispatch_streaming(
                        now,
                        config,
                        &mut cluster,
                        &mut pending,
                        &mut events,
                        &mut stats,
                        &mut aggs,
                        sink,
                        &inflight,
                        &mut running,
                    );
                }
            }
        } else {
            break;
        }

        // Defensive: nothing left to arrive or finish but tasks still
        // pending means the head can never fit (caller bypassed the clamp).
        // Force it through so the replay terminates.
        if events.is_empty() && peeked.iter().all(Option::is_none) && !pending.is_empty() {
            let queued = pending.remove(0).expect("non-empty queue");
            stats.forced_placements += 1;
            dispatch_streaming(
                queued,
                0,
                makespan,
                &mut cluster,
                &mut events,
                &mut stats,
                &mut aggs,
                sink,
                &inflight,
                &mut running,
            );
        }
    }

    stats.peak_pending_tasks = pending.peak_len();
    stats.peak_inflight_retries = retries.peak_entries();
    stats.leaked_inflight_retries = retries.len();
    debug_assert_eq!(
        stats.leaked_inflight_retries, 0,
        "every task reaches a terminal state, so the retry ledger must drain"
    );
    let leaked_inflight_instances = inflight.len();
    debug_assert_eq!(
        leaked_inflight_instances, 0,
        "every task reaches a terminal state, so the in-flight set must drain"
    );

    let reports = tenants
        .iter()
        .zip(aggs)
        .map(|(tenant, aggregates)| StreamingTenantReport {
            workflow: tenant.workflow.clone(),
            method: tenant.predictor.name(),
            aggregates,
        })
        .collect();

    StreamingReplayReport {
        reports,
        makespan_seconds: makespan,
        stats,
        nodes: cluster.nodes().to_vec(),
        peak_inflight_instances: peak_inflight,
        leaked_inflight_instances,
    }
}

/// Sizes and enqueues one attempt in the streaming engine — the exact
/// Submit-branch logic of [`schedule_workflows`], reading the instance from
/// the in-flight working set.
#[allow(clippy::too_many_arguments)]
fn submit_streaming(
    now: f64,
    ti: usize,
    instance: usize,
    attempt: u32,
    tenants: &mut [StreamingTenant],
    inflight: &HashMap<(usize, usize), TaskInstance>,
    retries: &RetryLedger<(usize, usize)>,
    pending: &mut PendingQueue<QueuedAttempt>,
    largest_node: f64,
    config: &SimulationConfig,
) {
    let inst = &inflight[&(ti, instance)];
    let submission = TaskSubmission {
        workflow: inst.workflow.clone(),
        task_type: inst.task_type.clone(),
        machine: inst.machine.clone(),
        sequence: inst.sequence,
        input_bytes: inst.input_bytes,
        preset_memory_bytes: inst.preset_memory_bytes,
    };
    let ctx = AttemptContext {
        attempt,
        last_allocation_bytes: retries.last_allocation((ti, instance)),
    };
    let prediction = tenants[ti].predictor.predict(&submission, ctx);
    let allocation = prediction
        .allocation_bytes
        .clamp(MIN_ALLOCATION_BYTES, largest_node);
    let success = allocation + 1e-6 >= inst.true_peak_bytes;
    let duration = if success {
        inst.base_runtime_seconds
    } else {
        inst.base_runtime_seconds * config.time_to_failure
    };
    let queued = PendingTask {
        submit_time: now,
        allocation_bytes: allocation,
        payload: QueuedAttempt {
            tenant: ti,
            instance,
            attempt,
            allocation_bytes: allocation,
            raw_estimate_bytes: prediction.raw_estimate_bytes,
            selected_model: prediction.selected_model.map(String::from),
            success,
            duration_seconds: duration,
        },
    };
    if attempt == 0 {
        pending.push_back(queued);
    } else {
        // Retries re-enter with their original priority (head of the
        // queue), matching the synchronous engine's `run_retry` semantics.
        pending.push_front(queued);
    }
}

/// Dispatches every queued task the policy allows at virtual time `now` —
/// the streaming twin of the materialised engine's `try_dispatch` closure.
#[allow(clippy::too_many_arguments)]
fn try_dispatch_streaming(
    now: f64,
    config: &SimulationConfig,
    cluster: &mut Cluster,
    pending: &mut PendingQueue<QueuedAttempt>,
    events: &mut EventHeap<Event>,
    stats: &mut SchedulerStats,
    aggs: &mut [ReplayAggregates],
    sink: &mut dyn AttemptSink,
    inflight: &HashMap<(usize, usize), TaskInstance>,
    running: &mut RunningRegistry,
) {
    loop {
        // Head of the queue first: every policy dispatches it if it fits.
        let head_node = pending
            .front()
            .and_then(|t| cluster.select_node(t.allocation_bytes, config.policy));
        let picked = if let Some(node) = head_node {
            Some((0, node))
        } else if config.policy == SchedulePolicy::Backfill {
            // Head blocked: scan a bounded window behind it for a task
            // that fits right now.
            pending
                .iter()
                .enumerate()
                .skip(1)
                .take(config.backfill_window)
                .find_map(|(idx, t)| {
                    cluster
                        .select_node(t.allocation_bytes, config.policy)
                        .map(|node| (idx, node))
                })
        } else {
            None
        };
        let Some((idx, node)) = picked else { break };
        let queued = pending.remove(idx).expect("picked index exists");
        dispatch_streaming(
            queued, node, now, cluster, events, stats, aggs, sink, inflight, running,
        );
    }
}

/// Starts a queued attempt on `node` at virtual time `now` in the streaming
/// engine: places it, folds the attempt event into its tenant's aggregates,
/// offers it to the sink, and schedules its completion.
#[allow(clippy::too_many_arguments)]
fn dispatch_streaming(
    queued: PendingTask<QueuedAttempt>,
    node: usize,
    now: f64,
    cluster: &mut Cluster,
    events: &mut EventHeap<Event>,
    stats: &mut SchedulerStats,
    aggs: &mut [ReplayAggregates],
    sink: &mut dyn AttemptSink,
    inflight: &HashMap<(usize, usize), TaskInstance>,
    running: &mut RunningRegistry,
) {
    let mut task = queued.payload;
    cluster.place_on(node, task.allocation_bytes);
    let queue_delay = (now - queued.submit_time).max(0.0);
    stats.record_dispatch(queue_delay, cluster);
    let inst = &inflight[&(task.tenant, task.instance)];
    let wasted_bytes = if task.success {
        (task.allocation_bytes - inst.true_peak_bytes).max(0.0)
    } else {
        task.allocation_bytes
    };
    let event = AttemptEvent {
        task_type: inst.task_type.clone(),
        sequence: inst.sequence,
        attempt: task.attempt,
        allocated_bytes: task.allocation_bytes,
        true_peak_bytes: inst.true_peak_bytes,
        duration_seconds: task.duration_seconds,
        success: task.success,
        wastage_gbh: wasted_bytes / 1e9 * task.duration_seconds / 3600.0,
        raw_estimate_bytes: task.raw_estimate_bytes,
        selected_model: task.selected_model.take(),
        submit_time_seconds: now,
        queue_delay_seconds: queue_delay,
    };
    aggs[task.tenant].observe_event(&event);
    sink.record(&event);
    let concurrent = cluster.running_tasks();
    let dispatch_id = running.insert(RunningRef {
        tenant: task.tenant,
        instance: task.instance,
        attempt: task.attempt,
        node,
        allocation_bytes: task.allocation_bytes,
    });
    events.push(
        now + task.duration_seconds,
        Event::Finish(RunningAttempt {
            node,
            submit_time: queued.submit_time,
            start_time: now,
            concurrent_at_start: concurrent,
            task,
            dispatch_id,
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{Prediction, PresetPredictor};
    use sizey_provenance::{MachineId, TaskTypeId};

    fn instance(seq: u64, peak: f64, runtime: f64, preset: f64) -> TaskInstance {
        TaskInstance {
            workflow: "wf".into(),
            task_type: TaskTypeId::new("t"),
            machine: MachineId::new("m"),
            sequence: seq,
            input_bytes: 1e9,
            true_peak_bytes: peak,
            base_runtime_seconds: runtime,
            preset_memory_bytes: preset,
            cpu_utilization_pct: 100.0,
            io_read_bytes: 1e9,
            io_write_bytes: 1e9,
        }
    }

    fn tiny_cluster(policy: SchedulePolicy) -> SimulationConfig {
        // One node, 10 GB, 2 slots: contention is easy to provoke.
        SimulationConfig::default()
            .with_nodes(1, 10e9, 2)
            .with_policy(policy)
    }

    #[test]
    fn sync_scheduler_runs_tasks_immediately_when_capacity_allows() {
        let mut s = Scheduler::new(&tiny_cluster(SchedulePolicy::FirstFit));
        let a = s.run_task(0.0, 4e9, 100.0);
        assert_eq!(a.start_seconds, 0.0);
        assert_eq!(a.finish_seconds, 100.0);
        assert_eq!(a.queue_delay_seconds, 0.0);
        let b = s.run_task(0.0, 4e9, 50.0);
        assert_eq!(b.start_seconds, 0.0);
        assert_eq!(s.running_tasks(), 2);
    }

    #[test]
    fn sync_scheduler_queues_when_memory_is_exhausted() {
        let mut s = Scheduler::new(&tiny_cluster(SchedulePolicy::FirstFit));
        s.run_task(0.0, 8e9, 100.0);
        // 8 of 10 GB taken: the next 8 GB task must wait for the completion.
        let b = s.run_task(0.0, 8e9, 50.0);
        assert_eq!(b.start_seconds, 100.0);
        assert_eq!(b.finish_seconds, 150.0);
        assert_eq!(b.queue_delay_seconds, 100.0);
        assert_eq!(s.stats().max_queue_delay_seconds, 100.0);
    }

    #[test]
    fn sync_scheduler_queues_when_slots_are_exhausted() {
        let mut s = Scheduler::new(&tiny_cluster(SchedulePolicy::FirstFit));
        s.run_task(0.0, 1e9, 100.0);
        s.run_task(0.0, 1e9, 200.0);
        // Both slots busy; third task waits for the earliest completion.
        let c = s.run_task(0.0, 1e9, 10.0);
        assert_eq!(c.start_seconds, 100.0);
    }

    #[test]
    fn fifo_floor_prevents_overtaking() {
        let mut s = Scheduler::new(&tiny_cluster(SchedulePolicy::FirstFit));
        s.run_task(0.0, 8e9, 100.0);
        let waited = s.run_task(0.0, 8e9, 50.0);
        assert_eq!(waited.start_seconds, 100.0);
        // A later 1 GB submission would fit at t = 0, but FIFO keeps order.
        let small = s.run_task(0.0, 1e9, 10.0);
        assert!(small.start_seconds >= waited.start_seconds);
    }

    #[test]
    fn retries_bypass_and_do_not_raise_the_fifo_floor() {
        let mut s = Scheduler::new(&tiny_cluster(SchedulePolicy::FirstFit));
        s.run_task(0.0, 4e9, 100.0);
        // A retry submitted at t = 500 (after its failed attempt) starts at
        // its own submission time…
        let retry = s.run_retry(500.0, 4e9, 100.0);
        assert_eq!(retry.start_seconds, 500.0);
        // …and does not push the FIFO floor forward: a first-submission
        // task arriving at 0 still starts immediately.
        let first = s.run_task(0.0, 1e9, 10.0);
        assert_eq!(first.start_seconds, 0.0);
    }

    #[test]
    fn backfill_lets_small_tasks_jump_the_floor() {
        let mut s = Scheduler::new(&tiny_cluster(SchedulePolicy::Backfill));
        s.run_task(0.0, 8e9, 100.0);
        let waited = s.run_task(0.0, 8e9, 50.0);
        assert_eq!(waited.start_seconds, 100.0);
        // Backfill: the 1 GB task starts at its own submission time.
        let small = s.run_task(0.0, 1e9, 10.0);
        assert_eq!(small.start_seconds, 0.0);
    }

    #[test]
    fn forced_placement_counts_unschedulable_tasks() {
        let mut s = Scheduler::new(&tiny_cluster(SchedulePolicy::FirstFit));
        let a = s.run_task(0.0, 20e9, 10.0);
        assert_eq!(a.node, 0);
        assert_eq!(s.stats().forced_placements, 1);
    }

    #[test]
    fn schedule_workflows_single_tenant_completes_everything() {
        let instances: Vec<TaskInstance> = (0..10).map(|i| instance(i, 1e9, 60.0, 2e9)).collect();
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                instances,
                Box::new(PresetPredictor),
            )],
            &tiny_cluster(SchedulePolicy::FirstFit),
        );
        let report = &result.reports[0];
        assert_eq!(report.instances, 10);
        assert_eq!(report.unfinished_instances, 0);
        assert_eq!(report.total_failures(), 0);
        // 2 GB each on a 10 GB node with 2 slots: 2 at a time, 5 waves.
        assert_eq!(result.makespan_seconds, 300.0);
        assert_eq!(result.stats.forced_placements, 0);
        assert!(result.stats.total_queue_delay_seconds > 0.0);
    }

    #[test]
    fn retries_run_through_the_shared_queue() {
        // Peak 7 GB, preset 2 GB: attempts 2 (fail), 4 (fail), 8 (success).
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                vec![instance(0, 7e9, 100.0, 2e9)],
                Box::new(PresetPredictor),
            )],
            &tiny_cluster(SchedulePolicy::FirstFit),
        );
        let report = &result.reports[0];
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.total_failures(), 2);
        assert_eq!(report.unfinished_instances, 0);
        // Attempts run back to back on the virtual clock.
        assert_eq!(result.makespan_seconds, 300.0);
    }

    #[test]
    fn exhausted_retries_are_reported_unfinished() {
        let config = SimulationConfig {
            max_attempts: 2,
            ..tiny_cluster(SchedulePolicy::FirstFit)
        };
        // Peak beyond the node: clamped attempts can never succeed.
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                vec![instance(0, 50e9, 10.0, 1e9)],
                Box::new(PresetPredictor),
            )],
            &config,
        );
        assert_eq!(result.reports[0].unfinished_instances, 1);
        assert_eq!(result.reports[0].events.len(), 2);
        assert_eq!(result.stats.forced_placements, 0);
    }

    #[test]
    fn tenants_share_the_cluster_and_interleave() {
        let a: Vec<TaskInstance> = (0..4).map(|i| instance(i, 1e9, 100.0, 4e9)).collect();
        let b: Vec<TaskInstance> = (0..4).map(|i| instance(i, 1e9, 100.0, 4e9)).collect();
        let result = schedule_workflows(
            vec![
                WorkflowTenant::new("a", a, Box::new(PresetPredictor)),
                WorkflowTenant::new("b", b, Box::new(PresetPredictor)),
            ],
            &tiny_cluster(SchedulePolicy::FirstFit),
        );
        assert_eq!(result.reports.len(), 2);
        // 8 tasks × 4 GB on a 10 GB / 2-slot node: 2 at a time, 4 waves.
        assert_eq!(result.makespan_seconds, 400.0);
        // Round-robin arrival: both tenants run one task in the first wave.
        let first_a = result.reports[0].events[0].submit_time_seconds;
        let first_b = result.reports[1].events[0].submit_time_seconds;
        assert_eq!(first_a, 0.0);
        assert_eq!(first_b, 0.0);
    }

    #[test]
    fn overallocating_tenant_delays_the_other() {
        // Tenant "hog" requests the whole node per task; tenant "lean"
        // requests a sliver. With the hog present, lean's tasks queue.
        let hog: Vec<TaskInstance> = (0..3).map(|i| instance(i, 1e9, 100.0, 10e9)).collect();
        let lean: Vec<TaskInstance> = (0..3).map(|i| instance(i, 1e9, 100.0, 1e9)).collect();
        let both = schedule_workflows(
            vec![
                WorkflowTenant::new("hog", hog, Box::new(PresetPredictor)),
                WorkflowTenant::new("lean", lean.clone(), Box::new(PresetPredictor)),
            ],
            &tiny_cluster(SchedulePolicy::FirstFit),
        );
        let alone = schedule_workflows(
            vec![WorkflowTenant::new("lean", lean, Box::new(PresetPredictor))],
            &tiny_cluster(SchedulePolicy::FirstFit),
        );
        let lean_delay_with_hog = both.reports[1]
            .events
            .iter()
            .map(|e| e.queue_delay_seconds)
            .sum::<f64>();
        let lean_delay_alone = alone.reports[0]
            .events
            .iter()
            .map(|e| e.queue_delay_seconds)
            .sum::<f64>();
        assert!(
            lean_delay_with_hog > lean_delay_alone,
            "over-allocation must cost the co-tenant queue delay \
             ({lean_delay_with_hog} vs {lean_delay_alone})"
        );
    }

    #[test]
    fn backfill_reduces_makespan_when_head_blocks() {
        // Head-of-line blocking: an 8 GB task occupies the node, another
        // 8 GB task blocks the queue head, and a 1 GB / 150 s sliver behind
        // it fits right now. FIFO makes the sliver wait for the head;
        // backfill starts it immediately.
        let mk = || {
            vec![
                instance(0, 1e9, 100.0, 8e9),
                instance(1, 1e9, 100.0, 8e9),
                instance(2, 1e9, 150.0, 1e9),
            ]
        };
        let fifo = schedule_workflows(
            vec![WorkflowTenant::new("wf", mk(), Box::new(PresetPredictor))],
            &tiny_cluster(SchedulePolicy::FirstFit),
        );
        let backfill = schedule_workflows(
            vec![WorkflowTenant::new("wf", mk(), Box::new(PresetPredictor))],
            &tiny_cluster(SchedulePolicy::Backfill),
        );
        // FIFO: sliver starts at 100 → makespan 250. Backfill: sliver runs
        // 0–150 alongside, makespan 200 (second 8 GB task 100–200).
        assert_eq!(fifo.makespan_seconds, 250.0);
        assert_eq!(backfill.makespan_seconds, 200.0);
    }

    #[test]
    fn queue_delay_reaches_the_predictor_and_the_report() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        /// Forwards the observed queue delays out of the consumed predictor.
        struct DelayProbe {
            total_millis: Arc<AtomicU64>,
        }
        impl MemoryPredictor for DelayProbe {
            fn name(&self) -> String {
                "probe".into()
            }
            fn predict(&self, _t: &TaskSubmission, _ctx: AttemptContext) -> Prediction {
                Prediction::simple(8e9)
            }
            fn observe(&mut self, record: &TaskRecord) {
                self.total_millis.fetch_add(
                    (record.queue_delay_seconds * 1000.0) as u64,
                    Ordering::Relaxed,
                );
            }
        }

        // Two 8 GB tasks on a 10 GB node: the second waits 100 s.
        let instances = vec![instance(0, 1e9, 100.0, 8e9), instance(1, 1e9, 100.0, 8e9)];
        let total_millis = Arc::new(AtomicU64::new(0));
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                instances,
                Box::new(DelayProbe {
                    total_millis: Arc::clone(&total_millis),
                }),
            )],
            &tiny_cluster(SchedulePolicy::FirstFit),
        );
        assert_eq!(total_millis.load(Ordering::Relaxed), 100_000);
        assert_eq!(result.stats.total_queue_delay_seconds, 100.0);
        assert_eq!(
            result.reports[0]
                .events
                .iter()
                .map(|e| e.queue_delay_seconds)
                .sum::<f64>(),
            100.0
        );
    }

    #[test]
    fn streaming_engine_matches_materialised_engine() {
        use crate::accounting::{NullRecordSink, ReplayAggregates};

        // Mixed workload with retries (peak 7 GB vs preset 2 GB doubles
        // up to success), arrival offsets, and contention on a tiny node.
        let mk_tenants = || {
            let a: Vec<TaskInstance> = (0..6).map(|i| instance(i, 1e9, 100.0, 4e9)).collect();
            let mut b: Vec<TaskInstance> = (0..4).map(|i| instance(i, 1e9, 80.0, 2e9)).collect();
            b.push(instance(4, 7e9, 100.0, 2e9));
            vec![
                WorkflowTenant::new("a", a, Box::new(PresetPredictor)),
                WorkflowTenant::new("b", b, Box::new(PresetPredictor)).with_arrival_offset(50.0),
            ]
        };
        for policy in SchedulePolicy::ALL {
            let config = tiny_cluster(policy);
            let materialised = schedule_workflows(mk_tenants(), &config);
            let mut streamed_events: Vec<AttemptEvent> = Vec::new();
            let streaming = schedule_workflows_streaming(
                mk_tenants()
                    .into_iter()
                    .map(StreamingTenant::from)
                    .collect(),
                &config,
                &mut streamed_events,
                &mut NullRecordSink,
            );
            assert_eq!(streaming.makespan_seconds, materialised.makespan_seconds);
            assert_eq!(streaming.stats, materialised.stats);
            assert_eq!(streaming.nodes, materialised.nodes);
            assert_eq!(streaming.leaked_inflight_instances, 0);
            for (s, m) in streaming.reports.iter().zip(&materialised.reports) {
                assert_eq!(s.workflow, m.workflow);
                assert_eq!(s.method, m.method);
                assert_eq!(s.aggregates, ReplayAggregates::from_report(m));
            }
            // The collecting sink sees every attempt the materialised
            // engine recorded.
            let total: usize = materialised.reports.iter().map(|r| r.events.len()).sum();
            assert_eq!(streamed_events.len(), total);
        }
    }

    #[test]
    fn streaming_engine_evicts_terminally_failed_instances() {
        use crate::accounting::{NullRecordSink, NullSink};

        let config = SimulationConfig {
            max_attempts: 2,
            ..tiny_cluster(SchedulePolicy::FirstFit)
        };
        // Peak beyond the node: clamped attempts can never succeed, so every
        // instance exhausts its budget — the path that used to strand
        // in-flight state.
        let instances: Vec<TaskInstance> = (0..5).map(|i| instance(i, 50e9, 10.0, 1e9)).collect();
        let result = schedule_workflows_streaming(
            vec![StreamingTenant::new(
                "wf",
                instances.into_iter(),
                Box::new(PresetPredictor),
            )],
            &config,
            &mut NullSink,
            &mut NullRecordSink,
        );
        assert_eq!(result.reports[0].aggregates.unfinished_instances, 5);
        assert_eq!(result.leaked_inflight_instances, 0);
        assert_eq!(result.stats.leaked_inflight_retries, 0);
        assert!(result.peak_inflight_instances >= 1);
    }

    #[test]
    fn node_crash_requeues_running_attempts_without_consuming_budget() {
        use crate::faults::{FaultPlan, NodeCrash};

        // 6 identical tasks on a 2-slot node: two run at a time. The node
        // crashes at t = 50 (mid-run) and returns at t = 75.
        let instances: Vec<TaskInstance> = (0..6).map(|i| instance(i, 1e9, 100.0, 2e9)).collect();
        let config = tiny_cluster(SchedulePolicy::FirstFit).with_faults(
            FaultPlan::default().with_node_crash(NodeCrash {
                time_seconds: 50.0,
                node: 0,
                down_seconds: 25.0,
            }),
        );
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                instances,
                Box::new(PresetPredictor),
            )],
            &config,
        );
        let report = &result.reports[0];
        assert_eq!(report.unfinished_instances, 0);
        assert_eq!(result.stats.requeued_attempts, 2);
        assert_eq!(result.stats.crash_lost_attempts, 2);
        assert_eq!(result.stats.preempted_attempts, 0);
        assert_eq!(result.stats.leaked_inflight_retries, 0);
        assert_eq!(result.stats.forced_placements, 0);
        // A fault kill is not an OOM: every attempt event (including the
        // two re-dispatches of the killed attempts) carries attempt == 0.
        assert_eq!(report.events.len(), 8);
        assert!(report.events.iter().all(|e| e.attempt == 0));
        // Queue [2,3,4,5,0,1] drains in 2-slot batches from the node's
        // return at 75: completions at 175, 275, 375.
        assert_eq!(result.makespan_seconds, 375.0);
    }

    #[test]
    fn pool_preemption_requeues_onto_surviving_capacity() {
        use crate::faults::{FaultPlan, PoolPreemption};

        // Pool 0: two 1-slot nodes (ids 0, 1); pool 1: one 1-slot node (2).
        let config = SimulationConfig::default()
            .with_nodes(2, 10e9, 1)
            .with_extra_pool(crate::config::NodePoolSpec {
                count: 1,
                memory_bytes: 10e9,
                slots: 1,
            })
            .with_faults(FaultPlan::default().with_pool_preemption(PoolPreemption {
                pool: 0,
                time_seconds: 50.0,
                return_after_seconds: 200.0,
            }));
        let instances: Vec<TaskInstance> = (0..4).map(|i| instance(i, 1e9, 100.0, 2e9)).collect();
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                instances,
                Box::new(PresetPredictor),
            )],
            &config,
        );
        assert_eq!(result.reports[0].unfinished_instances, 0);
        assert_eq!(result.stats.preempted_attempts, 2);
        assert_eq!(result.stats.crash_lost_attempts, 0);
        assert_eq!(result.stats.requeued_attempts, 2);
        assert_eq!(result.stats.forced_placements, 0);
        assert_eq!(result.stats.leaked_inflight_retries, 0);
    }

    #[test]
    fn task_kill_burst_requeues_the_oldest_running_attempt() {
        use crate::faults::{FaultPlan, TaskKillBurst};

        let instances: Vec<TaskInstance> = (0..3).map(|i| instance(i, 1e9, 100.0, 2e9)).collect();
        let config = tiny_cluster(SchedulePolicy::FirstFit).with_faults(
            FaultPlan::default().with_task_kills(TaskKillBurst {
                time_seconds: 50.0,
                tasks: 1,
            }),
        );
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                instances,
                Box::new(PresetPredictor),
            )],
            &config,
        );
        assert_eq!(result.reports[0].unfinished_instances, 0);
        assert_eq!(result.stats.requeued_attempts, 1);
        assert_eq!(result.stats.crash_lost_attempts, 0);
        assert_eq!(result.stats.preempted_attempts, 0);
        assert_eq!(result.stats.leaked_inflight_retries, 0);
    }

    #[test]
    fn permanent_crash_storm_strands_no_tasks() {
        use crate::faults::{CrashStorm, FaultPlan};

        // Every node goes down forever mid-run. Capacity-liveness: the
        // forced-placement guard still drives every task to a terminal
        // state, and no retry-ledger entry leaks.
        let instances: Vec<TaskInstance> = (0..6).map(|i| instance(i, 1e9, 100.0, 4e9)).collect();
        let config = SimulationConfig::default()
            .with_nodes(2, 10e9, 2)
            .with_faults(FaultPlan::default().with_storm(CrashStorm {
                time_seconds: 50.0,
                nodes: 2,
                down_seconds: f64::INFINITY,
                seed: 3,
            }));
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                instances,
                Box::new(PresetPredictor),
            )],
            &config,
        );
        assert_eq!(result.reports[0].unfinished_instances, 0);
        assert_eq!(result.stats.requeued_attempts, 4);
        assert_eq!(result.stats.crash_lost_attempts, 4);
        assert_eq!(result.stats.forced_placements, 6);
        assert_eq!(result.stats.leaked_inflight_retries, 0);
    }

    #[test]
    fn fault_plans_are_bit_identical_across_engines() {
        use crate::accounting::{NullRecordSink, ReplayAggregates};
        use crate::faults::{CrashStorm, FaultPlan, NodeCrash, TaskKillBurst};

        let plan = FaultPlan::default()
            .with_task_kills(TaskKillBurst {
                time_seconds: 40.0,
                tasks: 1,
            })
            .with_node_crash(NodeCrash {
                time_seconds: 120.0,
                node: 0,
                down_seconds: 60.0,
            })
            .with_storm(CrashStorm {
                time_seconds: 260.0,
                nodes: 1,
                down_seconds: 40.0,
                seed: 11,
            });
        let mk_tenants = || {
            let a: Vec<TaskInstance> = (0..6).map(|i| instance(i, 1e9, 100.0, 4e9)).collect();
            let mut b: Vec<TaskInstance> = (0..4).map(|i| instance(i, 1e9, 80.0, 2e9)).collect();
            b.push(instance(4, 7e9, 100.0, 2e9));
            vec![
                WorkflowTenant::new("a", a, Box::new(PresetPredictor)),
                WorkflowTenant::new("b", b, Box::new(PresetPredictor)).with_arrival_offset(50.0),
            ]
        };
        for policy in SchedulePolicy::ALL {
            let config = SimulationConfig::default()
                .with_nodes(2, 10e9, 2)
                .with_policy(policy)
                .with_faults(plan.clone());
            let materialised = schedule_workflows(mk_tenants(), &config);
            assert!(materialised.stats.requeued_attempts > 0, "{policy:?}");
            let mut streamed_events: Vec<AttemptEvent> = Vec::new();
            let streaming = schedule_workflows_streaming(
                mk_tenants()
                    .into_iter()
                    .map(StreamingTenant::from)
                    .collect(),
                &config,
                &mut streamed_events,
                &mut NullRecordSink,
            );
            assert_eq!(streaming.makespan_seconds, materialised.makespan_seconds);
            assert_eq!(streaming.stats, materialised.stats);
            assert_eq!(streaming.nodes, materialised.nodes);
            assert_eq!(streaming.leaked_inflight_instances, 0);
            for (s, m) in streaming.reports.iter().zip(&materialised.reports) {
                assert_eq!(s.aggregates, ReplayAggregates::from_report(m));
            }
            let total: usize = materialised.reports.iter().map(|r| r.events.len()).sum();
            assert_eq!(streamed_events.len(), total);
        }
    }

    #[test]
    fn per_node_peaks_never_exceed_capacity() {
        let instances: Vec<TaskInstance> = (0..30).map(|i| instance(i, 3e9, 50.0, 4e9)).collect();
        let result = schedule_workflows(
            vec![WorkflowTenant::new(
                "wf",
                instances,
                Box::new(PresetPredictor),
            )],
            &SimulationConfig::default()
                .with_nodes(2, 10e9, 4)
                .with_policy(SchedulePolicy::BestFit),
        );
        for node in &result.nodes {
            assert!(node.peak_allocated_bytes <= node.memory_bytes * (1.0 + 1e-9));
            assert!(node.peak_used_slots <= node.slots);
        }
        assert_eq!(result.stats.forced_placements, 0);
    }
}
