//! Equivalence proptests for the hot-path overhaul: every optimized kernel
//! must be **bit-identical** to the straightforward implementation it
//! replaced.
//!
//! * k-NN: flattened/pre-scaled buffer + `select_nth_unstable` partial
//!   selection vs. scale-per-row + stable full sort,
//! * RAQ: cached per-pair accuracy contributions vs. re-scoring the
//!   prequential history on every call,
//! * `Cluster::select_node`: the free-capacity index (segment tree +
//!   ordered-by-free set) vs. the naive linear scans, across random
//!   occupancy states, policies and degenerate allocations.

use proptest::prelude::*;
use sizey_core::raq::{
    accuracy_score, accuracy_score_cached, pair_accuracy, pool_raq_scores,
    pool_raq_scores_from_accuracy,
};
use sizey_ml::forest::{ForestConfig, RandomForestRegression};
use sizey_ml::knn::{KnnConfig, KnnRegression, KnnWeighting};
use sizey_ml::linear::{LinearConfig, LinearRegression};
use sizey_ml::model::Regressor;
use sizey_ml::scaler::{Scaler, ScalerKind};
use sizey_sim::{Node, Placement};
use sizey_suite::prelude::*;

// ---------------------------------------------------------------------------
// k-NN: optimized selection vs. the straightforward reference.
// ---------------------------------------------------------------------------

/// The pre-overhaul k-NN, verbatim: min-max scaler fitted on the rows, every
/// stored row re-scaled per query, distances ranked by a stable full sort.
fn naive_knn_predict(config: KnnConfig, rows: &[Vec<f64>], targets: &[f64], query: &[f64]) -> f64 {
    let n_cols = rows[0].len();
    // Min-max scaler parameters, exactly as `Scaler::fit` computes them.
    let mut shift = vec![0.0; n_cols];
    let mut scale = vec![1.0; n_cols];
    for c in 0..n_cols {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in rows {
            lo = lo.min(r[c]);
            hi = hi.max(r[c]);
        }
        let range = hi - lo;
        shift[c] = lo;
        scale[c] = if range > 1e-12 { range } else { 1.0 };
    }
    let transform = |row: &[f64]| -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(c, &v)| (v - shift[c]) / scale[c])
            .collect()
    };
    let scaled_query = transform(query);
    let mut dists: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let scaled = transform(row);
            let d2: f64 = scaled
                .iter()
                .zip(scaled_query.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            (i, d2)
        })
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1));
    let k = config.k.max(1).min(dists.len());
    dists.truncate(k);
    match config.weighting {
        KnnWeighting::Uniform => {
            let sum: f64 = dists.iter().map(|&(i, _)| targets[i]).sum();
            sum / dists.len() as f64
        }
        KnnWeighting::InverseDistance => {
            let exact: Vec<usize> = dists
                .iter()
                .filter(|(_, d)| *d == 0.0)
                .map(|&(i, _)| i)
                .collect();
            if !exact.is_empty() {
                let sum: f64 = exact.iter().map(|&i| targets[i]).sum();
                return sum / exact.len() as f64;
            }
            let mut weight_sum = 0.0;
            let mut value_sum = 0.0;
            for &(i, d2) in &dists {
                let w = 1.0 / d2.sqrt();
                weight_sum += w;
                value_sum += w * targets[i];
            }
            value_sum / weight_sum
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_partial_selection_is_bit_identical_to_the_full_sort(
        raw in proptest::collection::vec(
            (proptest::collection::vec(0.0f64..1e10, 2..3), 1e8f64..1e11),
            1..40,
        ),
        query in proptest::collection::vec(0.0f64..1e10, 2..3),
        k in 1usize..12,
        uniform in 0u8..2,
    ) {
        let uniform = uniform == 1;
        let rows: Vec<Vec<f64>> = raw.iter().map(|(f, _)| f.clone()).collect();
        let targets: Vec<f64> = raw.iter().map(|(_, t)| *t).collect();
        let config = KnnConfig {
            k,
            weighting: if uniform {
                KnnWeighting::Uniform
            } else {
                KnnWeighting::InverseDistance
            },
            ..KnnConfig::default()
        };
        let mut model = KnnRegression::new(config);
        model.fit(&Dataset::from_parts(rows.clone(), targets.clone())).unwrap();
        let optimized = model.predict(&query).unwrap();
        let reference = naive_knn_predict(config, &rows, &targets, &query);
        prop_assert_eq!(
            optimized.to_bits(),
            reference.to_bits(),
            "optimized {} vs reference {}",
            optimized,
            reference
        );
    }

    #[test]
    fn knn_partial_fit_growth_matches_the_reference(
        first in proptest::collection::vec((0.0f64..1e10, 1e8f64..1e11), 2..20),
        second in proptest::collection::vec((0.0f64..1e10, 1e8f64..1e11), 1..20),
        query in 0.0f64..1e10,
        k in 1usize..8,
    ) {
        // Eager rescaling (threshold 0, interval 1) pins the amortised growth
        // path bit-identical to the naive reference; the bounded-divergence
        // behaviour of the default amortised settings is covered below.
        let config = KnnConfig {
            k,
            weighting: KnnWeighting::InverseDistance,
            rescale_drift_threshold: 0.0,
            rescale_interval: 1,
        };
        let mut model = KnnRegression::new(config);
        let to_ds = |pairs: &[(f64, f64)]| {
            let xs: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
            let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
            Dataset::from_univariate(&xs, &ys)
        };
        model.fit(&to_ds(&first)).unwrap();
        model.partial_fit(&to_ds(&second)).unwrap();
        let rows: Vec<Vec<f64>> = first
            .iter()
            .chain(second.iter())
            .map(|(x, _)| vec![*x])
            .collect();
        let targets: Vec<f64> = first.iter().chain(second.iter()).map(|(_, y)| *y).collect();
        let optimized = model.predict(&[query]).unwrap();
        let reference = naive_knn_predict(config, &rows, &targets, &[query]);
        prop_assert_eq!(optimized.to_bits(), reference.to_bits());
    }
}

// ---------------------------------------------------------------------------
// Incremental learning path: every per-observe shortcut vs. the batch
// reference it amortises.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The O(columns) `Scaler::observe_row` update vs. a batch `fit` on the
    /// same rows: **bit-identical** for min-max (the min/max fold is
    /// order-exact), bounded-divergent for standard scaling (Welford vs. the
    /// two-pass mean/variance).
    #[test]
    fn incremental_scaler_matches_the_batch_fit(
        raw in proptest::collection::vec((-1e12f64..1e12, -1e12f64..1e12), 1..60),
        split in 0usize..60,
    ) {
        let rows: Vec<Vec<f64>> = raw.iter().map(|&(a, b)| vec![a, b]).collect();
        let split = split.min(rows.len());

        let mut batch = Scaler::new(ScalerKind::MinMax);
        batch.fit(&rows);
        // Pure incremental and batch-prefix-then-incremental must both land
        // on exactly the batch parameters.
        let mut incremental = Scaler::new(ScalerKind::MinMax);
        for row in &rows {
            incremental.observe_row(row);
        }
        let mut resumed = Scaler::new(ScalerKind::MinMax);
        resumed.fit(&rows[..split]);
        for row in &rows[split..] {
            resumed.observe_row(row);
        }
        for grown in [&incremental, &resumed] {
            for c in 0..rows[0].len() {
                prop_assert_eq!(grown.shift()[c].to_bits(), batch.shift()[c].to_bits());
                prop_assert_eq!(grown.scale()[c].to_bits(), batch.scale()[c].to_bits());
            }
        }

        let mut std_batch = Scaler::new(ScalerKind::Standard);
        std_batch.fit(&rows);
        let mut std_grown = Scaler::new(ScalerKind::Standard);
        for row in &rows {
            std_grown.observe_row(row);
        }
        for c in 0..rows[0].len() {
            let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
            prop_assert!(rel(std_grown.shift()[c], std_batch.shift()[c]) < 1e-9);
            prop_assert!(rel(std_grown.scale()[c], std_batch.scale()[c]) < 1e-9);
        }
    }

    /// The lazy linear solve (deferred to the first predict after updates)
    /// vs. eagerly fitting once on the concatenated data. The Gram/moment
    /// accumulation visits rows in the same order either way, so the solved
    /// coefficients — and every prediction — must be bit-identical.
    #[test]
    fn lazy_linear_solve_is_bit_identical_to_the_eager_fit(
        pairs in proptest::collection::vec((0.0f64..1e9, 1e6f64..1e10), 3..40),
        split in 1usize..39,
        queries in proptest::collection::vec(0.0f64..1e9, 1..5),
    ) {
        let split = split.min(pairs.len() - 1);
        let to_ds = |pairs: &[(f64, f64)]| {
            let xs: Vec<f64> = pairs.iter().map(|(x, _)| *x).collect();
            let ys: Vec<f64> = pairs.iter().map(|(_, y)| *y).collect();
            Dataset::from_univariate(&xs, &ys)
        };
        let mut eager = LinearRegression::new(LinearConfig::default());
        eager.fit(&to_ds(&pairs)).unwrap();
        let mut lazy = LinearRegression::new(LinearConfig::default());
        lazy.fit(&to_ds(&pairs[..split])).unwrap();
        lazy.partial_fit(&to_ds(&pairs[split..])).unwrap();
        prop_assert_eq!(lazy.coefficients(), eager.coefficients());
        for q in &queries {
            let l = lazy.predict(std::slice::from_ref(q)).unwrap();
            let e = eager.predict(std::slice::from_ref(q)).unwrap();
            prop_assert_eq!(l.to_bits(), e.to_bits());
        }
    }

    /// The amortised k-NN growth path under its default (drift-gated)
    /// configuration: predictions may diverge from the eager reference while
    /// the epoch scaler is stale, but they must stay finite and inside the
    /// observed target range — and an interval-1 model over the same stream
    /// must stay bit-identical to the naive reference throughout.
    #[test]
    fn amortised_knn_divergence_is_bounded_by_the_target_range(
        stream in proptest::collection::vec((0.0f64..1e10, 1e8f64..1e11), 3..30),
        query in 0.0f64..1e10,
        k in 1usize..6,
    ) {
        let amortised_config = KnnConfig { k, ..KnnConfig::default() };
        let eager_config = KnnConfig {
            k,
            rescale_drift_threshold: f64::NEG_INFINITY,
            rescale_interval: 1,
            ..KnnConfig::default()
        };
        let mut amortised = KnnRegression::new(amortised_config);
        let mut eager = KnnRegression::new(eager_config);
        let seed = Dataset::from_univariate(&[stream[0].0, stream[1].0], &[stream[0].1, stream[1].1]);
        amortised.fit(&seed).unwrap();
        eager.fit(&seed).unwrap();
        for &(x, y) in &stream[2..] {
            let point = Dataset::from_univariate(&[x], &[y]);
            amortised.partial_fit(&point).unwrap();
            eager.partial_fit(&point).unwrap();
        }
        let rows: Vec<Vec<f64>> = stream.iter().map(|&(x, _)| vec![x]).collect();
        let targets: Vec<f64> = stream.iter().map(|&(_, y)| y).collect();
        let reference = naive_knn_predict(eager_config, &rows, &targets, &[query]);
        // Every-observe rescaling reproduces the eager pre-amortisation
        // behaviour bit for bit.
        prop_assert_eq!(eager.predict(&[query]).unwrap().to_bits(), reference.to_bits());
        // The drift-gated model is bounded: k-NN averages stored targets, so
        // whatever neighbourhood the stale epoch parameters select, the
        // estimate cannot leave the observed target range.
        let p = amortised.predict(&[query]).unwrap();
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p.is_finite());
        prop_assert!(p >= lo - 1e-6 && p <= hi + 1e-6, "p = {} outside [{}, {}]", p, lo, hi);
    }

    /// The credit-banked, windowed forest refresh: per-observe work is
    /// bounded, and like the k-NN bound above, predictions are averages of
    /// leaf means so they can never leave the observed target range no
    /// matter which trees the credit schedule refreshed.
    #[test]
    fn windowed_forest_refresh_stays_within_the_target_range(
        stream in proptest::collection::vec((0.0f64..1e10, 1e8f64..1e11), 4..24),
        query in 0.0f64..1e10,
        window in 0usize..8,
        fraction in 0.05f64..1.0,
    ) {
        let config = ForestConfig {
            n_trees: 5,
            incremental_refresh_fraction: fraction,
            incremental_window: window,
            ..ForestConfig::default()
        };
        let mut forest = RandomForestRegression::new(config);
        let seed = Dataset::from_univariate(
            &[stream[0].0, stream[1].0, stream[2].0],
            &[stream[0].1, stream[1].1, stream[2].1],
        );
        forest.fit(&seed).unwrap();
        for &(x, y) in &stream[3..] {
            forest
                .partial_fit(&Dataset::from_univariate(&[x], &[y]))
                .unwrap();
        }
        let targets: Vec<f64> = stream.iter().map(|&(_, y)| y).collect();
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = forest.predict(&[query]).unwrap();
        prop_assert!(p.is_finite());
        prop_assert!(p >= lo - 1e-6 && p <= hi + 1e-6, "p = {} outside [{}, {}]", p, lo, hi);
    }
}

// ---------------------------------------------------------------------------
// RAQ: cached per-pair contributions vs. per-call re-scoring.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cached_accuracy_and_raq_scores_are_bit_identical(
        histories in proptest::collection::vec(
            proptest::collection::vec((0.0f64..1e12, 1.0f64..1e12), 0..80),
            1..5,
        ),
        alpha in 0.0f64..1.0,
        window in 1usize..60,
    ) {
        // Estimates derived from the histories so they are arbitrary but
        // deterministic.
        let estimates: Vec<f64> = histories
            .iter()
            .map(|h| h.first().map_or(1e9, |(p, _)| *p + 1.0))
            .collect();
        // Full-history equivalence.
        let naive = pool_raq_scores(&histories, &estimates, alpha);
        let cached_accuracies: Vec<f64> = histories
            .iter()
            .map(|h| {
                let scores: Vec<f64> =
                    h.iter().map(|&(p, a)| pair_accuracy(p, a)).collect();
                accuracy_score_cached(&scores)
            })
            .collect();
        let cached = pool_raq_scores_from_accuracy(&cached_accuracies, &estimates, alpha);
        prop_assert_eq!(naive.len(), cached.len());
        for (n, c) in naive.iter().zip(cached.iter()) {
            prop_assert_eq!(n.to_bits(), c.to_bits());
        }
        // Windowed equivalence (the predict path scores a bounded window):
        // summing the cached tail must equal re-scoring the tail pairs.
        for h in &histories {
            let tail = &h[h.len().saturating_sub(window)..];
            let scores: Vec<f64> = tail.iter().map(|&(p, a)| pair_accuracy(p, a)).collect();
            prop_assert_eq!(
                accuracy_score_cached(&scores).to_bits(),
                accuracy_score(tail).to_bits()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster::select_node: free-capacity index vs. the naive linear scans.
// ---------------------------------------------------------------------------

/// The pre-overhaul node selection, verbatim.
fn naive_select_node(
    nodes: &[Node],
    allocation_bytes: f64,
    policy: SchedulePolicy,
) -> Option<usize> {
    match policy {
        SchedulePolicy::FirstFit | SchedulePolicy::Backfill => nodes
            .iter()
            .find(|n| n.fits(allocation_bytes))
            .map(|n| n.id),
        SchedulePolicy::BestFit => nodes
            .iter()
            .filter(|n| n.fits(allocation_bytes))
            .min_by(|a, b| {
                (a.free_bytes() - allocation_bytes).total_cmp(&(b.free_bytes() - allocation_bytes))
            })
            .map(|n| n.id),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_select_node_matches_the_linear_scan(
        node_count in 1usize..12,
        node_mem_gb in 4.0f64..64.0,
        slots in 1usize..4,
        extra_pool in (0usize..4, 8.0f64..128.0, 1usize..6),
        ops in proptest::collection::vec((0.1f64..40.0, 0u8..2), 1..60),
        probes in proptest::collection::vec(0.05f64..80.0, 1..10),
    ) {
        let mut config = SimulationConfig {
            node_count,
            node_memory_bytes: node_mem_gb * 1e9,
            slots_per_node: slots,
            ..SimulationConfig::default()
        };
        let (extra_count, extra_mem_gb, extra_slots) = extra_pool;
        if extra_count > 0 {
            config = config.with_extra_pool(NodePoolSpec {
                count: extra_count,
                memory_bytes: extra_mem_gb * 1e9,
                slots: extra_slots,
            });
        }
        let mut cluster = sizey_sim::Cluster::new(&config);
        let mut placements: Vec<(Placement, f64)> = Vec::new();

        for (alloc_gb, place) in ops {
            let place = place == 1;
            let alloc = alloc_gb * 1e9;
            // Every mutation is followed by a full policy comparison, so the
            // index is validated across arbitrary occupancy states, not just
            // the final one.
            if place || placements.is_empty() {
                if let Some(p) = cluster.try_place(alloc) {
                    placements.push((p, alloc));
                }
            } else {
                let (p, released) = placements.swap_remove(placements.len() / 2);
                cluster.release(p, released);
            }
            for &probe_gb in &probes {
                let probe = probe_gb * 1e9;
                for policy in SchedulePolicy::ALL {
                    prop_assert_eq!(
                        cluster.select_node(probe, policy),
                        naive_select_node(cluster.nodes(), probe, policy),
                        "policy {:?}, probe {} bytes",
                        policy,
                        probe
                    );
                }
            }
            // Exact-boundary and degenerate allocations: free amounts
            // themselves, NaN and infinity must agree as well.
            let boundary: Vec<f64> = cluster
                .nodes()
                .iter()
                .map(|n| n.free_bytes())
                .chain([f64::NAN, f64::INFINITY, 0.0])
                .collect();
            for probe in boundary {
                for policy in SchedulePolicy::ALL {
                    prop_assert_eq!(
                        cluster.select_node(probe, policy),
                        naive_select_node(cluster.nodes(), probe, policy),
                        "policy {:?}, boundary probe {} bytes",
                        policy,
                        probe
                    );
                }
            }
        }
    }
}
