//! The in-memory provenance store.
//!
//! The store plays the role of the provenance database attached to the
//! scientific workflow management system in the paper's Fig. 3: when a task
//! is submitted, Sizey retrieves all historical executions of the same
//! (task type, machine) combination; when a task finishes, its monitoring
//! data is appended. The store is thread-safe so the simulator can complete
//! tasks from several worker threads while predictors query concurrently.
//!
//! ## Bounded retention
//!
//! By default the store retains every record forever. For streaming replays
//! whose working set must stay bounded (million-task traces), a **retention
//! limit** turns the record log into a ring buffer: once more than `limit`
//! records are stored, the oldest are evicted. Records keep stable,
//! monotonically increasing ids, so the per-key indexes stay consistent
//! across evictions; [`ProvenanceStore::total_inserted`] and
//! [`ProvenanceStore::evicted`] expose the all-time counters. Two pieces of
//! state deliberately survive eviction so that bounding the store never
//! weakens safety-critical answers:
//!
//! * [`max_observed_peak`](ProvenanceStore::max_observed_peak) is a running
//!   maximum over **all** inserted records, evicted or not (the
//!   failure-handling escalation must never forget a large peak), and
//! * [`knows_task_type`](ProvenanceStore::knows_task_type) stays true for a
//!   task type whose records have all been evicted.

use crate::record::{TaskMachineKey, TaskOutcome, TaskRecord, TaskTypeId};
use parking_lot::RwLock;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Thread-safe, indexed provenance store.
#[derive(Debug, Default)]
pub struct ProvenanceStore {
    inner: RwLock<StoreInner>,
}

/// Cloning takes a consistent snapshot of the whole store under its read
/// lock. Records are `Arc`-shared, so the deep part of the clone is the
/// index maps, not the monitoring data — this is what makes periodic
/// predictor snapshots (the lock-free serving path) affordable.
impl Clone for ProvenanceStore {
    fn clone(&self) -> Self {
        ProvenanceStore {
            inner: RwLock::new(self.inner.read().clone()),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct StoreInner {
    /// Retained records in insertion order. Record `i` of the deque has the
    /// stable id `base + i`.
    records: VecDeque<Arc<TaskRecord>>,
    /// Stable id of the oldest retained record (number of evictions so far).
    base: u64,
    /// Index: (task type, machine) -> stable record ids, insertion order.
    by_key: HashMap<TaskMachineKey, VecDeque<u64>>,
    /// Index: task type -> stable record ids (across machines).
    by_task_type: HashMap<TaskTypeId, VecDeque<u64>>,
    /// All-time maximum peak per key; survives eviction.
    max_peak_by_key: HashMap<TaskMachineKey, f64>,
    /// All-time number of inserted records (retained + evicted).
    total_inserted: u64,
    /// Retention limit; `None` keeps everything (the default).
    retention: Option<usize>,
    /// Number of currently running tasks, maintained by the execution
    /// environment and exposed to predictors as context.
    running_tasks: u32,
}

impl StoreInner {
    fn get(&self, id: u64) -> Option<&Arc<TaskRecord>> {
        id.checked_sub(self.base)
            .and_then(|offset| self.records.get(offset as usize))
    }

    /// Evicts the oldest retained record, unlinking it from both indexes
    /// (the oldest record's id is by construction at the front of its
    /// per-key lists).
    fn evict_front(&mut self) {
        let Some(record) = self.records.pop_front() else {
            return;
        };
        let id = self.base;
        self.base += 1;
        if let Some(ids) = self.by_key.get_mut(&record.key()) {
            if ids.front() == Some(&id) {
                ids.pop_front();
            }
        }
        if let Some(ids) = self.by_task_type.get_mut(&record.task_type) {
            if ids.front() == Some(&id) {
                ids.pop_front();
            }
        }
        // Empty index entries are kept on purpose: `knows_task_type` must
        // keep answering true after the type's records age out.
    }
}

impl ProvenanceStore {
    /// Creates an empty store with unlimited retention.
    pub fn new() -> Self {
        ProvenanceStore::default()
    }

    /// Creates an empty store that retains at most `limit` records,
    /// evicting the oldest beyond that (ring-buffer behaviour).
    pub fn with_retention(limit: usize) -> Self {
        let store = ProvenanceStore::default();
        store.inner.write().retention = Some(limit.max(1));
        store
    }

    /// Changes the retention limit. `None` disables eviction; a limit
    /// smaller than the current size evicts immediately.
    pub fn set_retention(&self, limit: Option<usize>) {
        let mut inner = self.inner.write();
        inner.retention = limit.map(|l| l.max(1));
        if let Some(cap) = inner.retention {
            while inner.records.len() > cap {
                inner.evict_front();
            }
        }
    }

    /// The current retention limit (`None` = unlimited).
    pub fn retention(&self) -> Option<usize> {
        self.inner.read().retention
    }

    /// Appends a finished task record.
    pub fn insert(&self, record: TaskRecord) {
        let mut inner = self.inner.write();
        let id = inner.base + inner.records.len() as u64;
        let key = record.key();
        let task_type = record.task_type.clone();
        let peak = record.peak_memory_bytes;
        inner.records.push_back(Arc::new(record));
        inner.by_key.entry(key.clone()).or_default().push_back(id);
        inner
            .by_task_type
            .entry(task_type)
            .or_default()
            .push_back(id);
        inner
            .max_peak_by_key
            .entry(key)
            .and_modify(|m| *m = m.max(peak))
            .or_insert(peak);
        inner.total_inserted += 1;
        if let Some(cap) = inner.retention {
            while inner.records.len() > cap {
                inner.evict_front();
            }
        }
    }

    /// Number of currently retained records.
    pub fn len(&self) -> usize {
        self.inner.read().records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All-time number of inserted records, including evicted ones.
    pub fn total_inserted(&self) -> u64 {
        self.inner.read().total_inserted
    }

    /// Number of records evicted by the retention limit so far.
    pub fn evicted(&self) -> u64 {
        self.inner.read().base
    }

    /// All retained records for one (task type, machine) combination, in
    /// insertion order. This is the query Sizey issues on every task
    /// submission.
    pub fn history(&self, key: &TaskMachineKey) -> Vec<Arc<TaskRecord>> {
        let inner = self.inner.read();
        inner
            .by_key
            .get(key)
            .map(|ids| {
                ids.iter()
                    .filter_map(|&id| inner.get(id).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All retained records of a task type regardless of machine, in
    /// insertion order.
    pub fn history_for_task_type(&self, task_type: &TaskTypeId) -> Vec<Arc<TaskRecord>> {
        let inner = self.inner.read();
        inner
            .by_task_type
            .get(task_type)
            .map(|ids| {
                ids.iter()
                    .filter_map(|&id| inner.get(id).cloned())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Only the successful retained records for a (task type, machine)
    /// combination. Models are trained on successful executions — failed
    /// attempts never observed the true peak.
    pub fn successful_history(&self, key: &TaskMachineKey) -> Vec<Arc<TaskRecord>> {
        self.history(key)
            .into_iter()
            .filter(|r| r.outcome == TaskOutcome::Succeeded)
            .collect()
    }

    /// Number of retained executions for a (task type, machine) combination.
    pub fn count(&self, key: &TaskMachineKey) -> usize {
        self.inner.read().by_key.get(key).map_or(0, VecDeque::len)
    }

    /// True when the task type has been observed before on any machine —
    /// including types whose records have since been evicted.
    pub fn knows_task_type(&self, task_type: &TaskTypeId) -> bool {
        self.inner.read().by_task_type.contains_key(task_type)
    }

    /// Largest peak memory ever observed for a (task type, machine)
    /// combination, if any — an all-time maximum that survives eviction, so
    /// the failure-handling strategy never forgets a large peak.
    pub fn max_observed_peak(&self, key: &TaskMachineKey) -> Option<f64> {
        self.inner.read().max_peak_by_key.get(key).copied()
    }

    /// All distinct task types seen so far (including evicted ones).
    pub fn task_types(&self) -> Vec<TaskTypeId> {
        let inner = self.inner.read();
        let mut types: Vec<TaskTypeId> = inner.by_task_type.keys().cloned().collect();
        types.sort();
        types
    }

    /// A snapshot of every retained record in insertion order.
    pub fn all_records(&self) -> Vec<Arc<TaskRecord>> {
        self.inner.read().records.iter().map(Arc::clone).collect()
    }

    /// Sets the number of currently running tasks (maintained by the
    /// execution environment).
    pub fn set_running_tasks(&self, n: u32) {
        self.inner.write().running_tasks = n;
    }

    /// The number of currently running tasks.
    pub fn running_tasks(&self) -> u32 {
        self.inner.read().running_tasks
    }

    /// Removes all records and resets the all-time counters (used between
    /// simulated workflow executions). The retention limit is kept.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.records.clear();
        inner.base = 0;
        inner.by_key.clear();
        inner.by_task_type.clear();
        inner.max_peak_by_key.clear();
        inner.total_inserted = 0;
        inner.running_tasks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MachineId;

    fn record(task: &str, machine: &str, seq: u64, peak: f64, outcome: TaskOutcome) -> TaskRecord {
        TaskRecord {
            workflow: "wf".to_string(),
            task_type: TaskTypeId::new(task),
            machine: MachineId::new(machine),
            sequence: seq,
            input_bytes: 1e9 + seq as f64,
            peak_memory_bytes: peak,
            allocated_memory_bytes: peak * 2.0,
            runtime_seconds: 60.0,
            concurrent_tasks: 1,
            queue_delay_seconds: 0.0,
            outcome,
        }
    }

    #[test]
    fn insert_and_query_by_key() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m2", 1, 2e9, TaskOutcome::Succeeded));
        store.insert(record("b", "m1", 2, 3e9, TaskOutcome::Succeeded));
        assert_eq!(store.len(), 3);

        let key = TaskMachineKey::new("a", "m1");
        let hist = store.history(&key);
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].peak_memory_bytes, 1e9);
        assert_eq!(store.count(&key), 1);
        assert_eq!(store.count(&TaskMachineKey::new("a", "m2")), 1);
        assert_eq!(store.count(&TaskMachineKey::new("z", "m1")), 0);
    }

    #[test]
    fn history_preserves_insertion_order() {
        let store = ProvenanceStore::new();
        for seq in 0..10 {
            store.insert(record("a", "m1", seq, seq as f64, TaskOutcome::Succeeded));
        }
        let hist = store.history(&TaskMachineKey::new("a", "m1"));
        let seqs: Vec<u64> = hist.iter().map(|r| r.sequence).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn successful_history_filters_failures() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m1", 1, 2e9, TaskOutcome::FailedOutOfMemory));
        let key = TaskMachineKey::new("a", "m1");
        assert_eq!(store.history(&key).len(), 2);
        assert_eq!(store.successful_history(&key).len(), 1);
    }

    #[test]
    fn history_for_task_type_spans_machines() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m2", 1, 2e9, TaskOutcome::Succeeded));
        assert_eq!(store.history_for_task_type(&TaskTypeId::new("a")).len(), 2);
        assert!(store.knows_task_type(&TaskTypeId::new("a")));
        assert!(!store.knows_task_type(&TaskTypeId::new("b")));
    }

    #[test]
    fn max_observed_peak_tracks_maximum() {
        let store = ProvenanceStore::new();
        let key = TaskMachineKey::new("a", "m1");
        assert_eq!(store.max_observed_peak(&key), None);
        store.insert(record("a", "m1", 0, 1e9, TaskOutcome::Succeeded));
        store.insert(record("a", "m1", 1, 5e9, TaskOutcome::FailedOutOfMemory));
        store.insert(record("a", "m1", 2, 3e9, TaskOutcome::Succeeded));
        assert_eq!(store.max_observed_peak(&key), Some(5e9));
    }

    #[test]
    fn task_types_are_sorted_and_unique() {
        let store = ProvenanceStore::new();
        store.insert(record("b", "m1", 0, 1.0, TaskOutcome::Succeeded));
        store.insert(record("a", "m1", 1, 1.0, TaskOutcome::Succeeded));
        store.insert(record("a", "m2", 2, 1.0, TaskOutcome::Succeeded));
        let types = store.task_types();
        assert_eq!(types, vec![TaskTypeId::new("a"), TaskTypeId::new("b")]);
    }

    #[test]
    fn running_tasks_counter() {
        let store = ProvenanceStore::new();
        assert_eq!(store.running_tasks(), 0);
        store.set_running_tasks(7);
        assert_eq!(store.running_tasks(), 7);
    }

    #[test]
    fn clear_resets_everything() {
        let store = ProvenanceStore::new();
        store.insert(record("a", "m1", 0, 1.0, TaskOutcome::Succeeded));
        store.set_running_tasks(3);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.running_tasks(), 0);
        assert!(store.task_types().is_empty());
        assert_eq!(store.total_inserted(), 0);
        assert_eq!(store.evicted(), 0);
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let store = Arc::new(ProvenanceStore::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..50 {
                        store.insert(record("a", "m1", t * 100 + i, 1e9, TaskOutcome::Succeeded));
                        let _ = store.history(&TaskMachineKey::new("a", "m1"));
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn retention_limit_evicts_oldest_records() {
        let store = ProvenanceStore::with_retention(5);
        for seq in 0..12 {
            store.insert(record("a", "m1", seq, seq as f64, TaskOutcome::Succeeded));
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.total_inserted(), 12);
        assert_eq!(store.evicted(), 7);
        let hist = store.history(&TaskMachineKey::new("a", "m1"));
        let seqs: Vec<u64> = hist.iter().map(|r| r.sequence).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10, 11]);
        assert_eq!(store.count(&TaskMachineKey::new("a", "m1")), 5);
    }

    #[test]
    fn max_peak_and_task_types_survive_eviction() {
        let store = ProvenanceStore::with_retention(2);
        let key = TaskMachineKey::new("a", "m1");
        store.insert(record("a", "m1", 0, 9e9, TaskOutcome::FailedOutOfMemory));
        store.insert(record("b", "m1", 1, 1e9, TaskOutcome::Succeeded));
        store.insert(record("b", "m1", 2, 2e9, TaskOutcome::Succeeded));
        store.insert(record("b", "m1", 3, 3e9, TaskOutcome::Succeeded));
        // The "a" record (and its 9 GB peak) has been evicted...
        assert!(store.history(&key).is_empty());
        // ...but the safety-critical answers survive.
        assert_eq!(store.max_observed_peak(&key), Some(9e9));
        assert!(store.knows_task_type(&TaskTypeId::new("a")));
    }

    #[test]
    fn set_retention_trims_immediately_and_can_be_lifted() {
        let store = ProvenanceStore::new();
        for seq in 0..10 {
            store.insert(record("a", "m1", seq, 1.0, TaskOutcome::Succeeded));
        }
        store.set_retention(Some(3));
        assert_eq!(store.len(), 3);
        assert_eq!(store.evicted(), 7);
        store.set_retention(None);
        for seq in 10..20 {
            store.insert(record("a", "m1", seq, 1.0, TaskOutcome::Succeeded));
        }
        assert_eq!(store.len(), 13);
        assert_eq!(store.retention(), None);
    }

    #[test]
    fn bounded_and_unbounded_agree_on_retained_suffix() {
        let bounded = ProvenanceStore::with_retention(4);
        let unbounded = ProvenanceStore::new();
        for seq in 0..9 {
            let r = record("a", "m1", seq, (seq + 1) as f64, TaskOutcome::Succeeded);
            bounded.insert(r.clone());
            unbounded.insert(r);
        }
        let full = unbounded.history(&TaskMachineKey::new("a", "m1"));
        let tail = bounded.history(&TaskMachineKey::new("a", "m1"));
        assert_eq!(&full[full.len() - 4..], &tail[..]);
        assert_eq!(
            bounded.max_observed_peak(&TaskMachineKey::new("a", "m1")),
            unbounded.max_observed_peak(&TaskMachineKey::new("a", "m1")),
        );
    }
}
