//! `serve_bench` — closed-loop load generator for the async serving
//! front-end ([`AsyncSizey`]): latency-vs-offered-load curves for the
//! lock-free snapshot predict path under live observe traffic.
//!
//! The harness drives thousands of simulated tenants — distinct
//! (task type, machine) keys with their own model pools — from a small pool
//! of client threads (the bench boxes are CPU-scarce; each thread
//! multiplexes many tenants round-robin). Every client loop iteration
//! issues one `predict` through the wait-free snapshot path and, every
//! `observe_every`-th iteration, submits a completion record to the async
//! observe queues — so the read path is measured *while* micro-batches,
//! snapshot publications and deferred retrains run against the same shards.
//!
//! The run is pinned (fixed tenants, seed, service knobs — deliberately
//! independent of `SIZEY_BENCH_*`) and walks a ladder of offered predict
//! rates, closed-loop with pacing: each client issues its next request
//! after the previous one completes, sleeping to hit the level's target
//! rate (`0` = unthrottled). Per level it reports achieved throughput,
//! predict latency percentiles (p50/p90/p99/p999/max, post-warmup),
//! observe-submit latency, shed counts and the service's retrain telemetry.
//! A quiescent single-threaded **baseline** level runs first: the
//! uncontended predict percentiles the loaded levels are compared against —
//! the headline claim is that the snapshot path's p99 does not degrade when
//! observe load arrives, because predicts never take a lock.
//!
//! The measurement lands as the `serve` scenario in `BENCH_replay.json`
//! (schema `sizey-perf-replay/v2`), next to `replay` and `scale`.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sizey-bench --bin serve_bench              # full ladder
//! cargo run --release -p sizey-bench --bin serve_bench -- --smoke  # CI smoke + self-check
//! cargo run --release -p sizey-bench --bin serve_bench -- --out /tmp/bench.json
//! ```

use sizey_bench::perf_json::{
    extract_scenario, json_latency, print_latency, summarize, write_bench_json, LatencySummary,
};
use sizey_core::{
    AdmissionPolicy, AsyncService, AsyncSizey, ConcurrentPredictor, ServiceConfig, ServiceStats,
    SizeyConfig, SizeyPredictor,
};
use sizey_provenance::{MachineId, TaskOutcome, TaskRecord, TaskTypeId};
use sizey_sim::AttemptContext;
use sizey_sim::TaskSubmission;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Pinned specs.
// ---------------------------------------------------------------------------

/// The pinned parameters of one serve-bench mode.
struct ServeSpec {
    mode: &'static str,
    /// Shards of the service (= worker threads).
    shards: usize,
    /// Client threads; each multiplexes `tenants / client_threads` tenants.
    client_threads: usize,
    /// Simulated tenants — distinct (task type, machine) keys.
    tenants: usize,
    /// Warm-up records per tenant before the clock starts.
    seed_records: u64,
    /// `SizeyConfig::history_window` of the shard predictors.
    history_window: usize,
    /// One observe submission per this many predicts.
    observe_every: u64,
    /// Offered predict rates (per second, all clients combined); `0` is the
    /// unthrottled closed-loop level.
    levels: &'static [u64],
    /// Wall-clock seconds per level.
    level_seconds: f64,
    /// Leading fraction of each level discarded as warm-up.
    warmup_fraction: f64,
}

const FULL: ServeSpec = ServeSpec {
    mode: "full",
    shards: 4,
    client_threads: 4,
    tenants: 2000,
    seed_records: 4,
    history_window: 64,
    observe_every: 5,
    levels: &[2_000, 10_000, 50_000, 0],
    level_seconds: 2.0,
    warmup_fraction: 0.25,
};

const SMOKE: ServeSpec = ServeSpec {
    mode: "smoke",
    shards: 2,
    client_threads: 2,
    tenants: 64,
    seed_records: 4,
    history_window: 64,
    observe_every: 5,
    levels: &[2_000, 0],
    level_seconds: 0.3,
    warmup_fraction: 0.25,
};

/// The pinned service knobs of the benched front-end. Shed admission keeps
/// the load generator honest under overload (drops are counted, clients are
/// never parked on a full queue), and deferred retrains exercise the whole
/// subsystem: retrain work runs on the shard workers, capped per batch,
/// while the predict path keeps reading published snapshots.
fn service_config() -> ServiceConfig {
    ServiceConfig {
        queue_capacity: 4096,
        batch_max: 128,
        batch_window: Duration::from_micros(100),
        admission: AdmissionPolicy::Shed,
        deferred_retrains: true,
        retrain_cap_per_batch: 2,
    }
}

// ---------------------------------------------------------------------------
// Workload: tenants and their records.
// ---------------------------------------------------------------------------

/// One simulated tenant: a distinct (task type, machine) key with a linear
/// input→memory relation the models can learn.
struct Tenant {
    task_type: TaskTypeId,
    machine: MachineId,
    /// Memory = `factor * input + 0.5 GB`; varies per tenant so pools learn
    /// genuinely different models.
    factor: f64,
}

fn build_tenants(count: usize) -> Vec<Tenant> {
    (0..count)
        .map(|i| Tenant {
            task_type: TaskTypeId::new(format!("tenant-{i:04}")),
            machine: MachineId::new(format!("node-{:02}", i % 16)),
            factor: 1.5 + (i % 7) as f64 * 0.25,
        })
        .collect()
}

fn input_gb(iteration: u64) -> f64 {
    1.0 + (iteration % 8) as f64
}

fn record_for(tenant: &Tenant, sequence: u64, iteration: u64) -> TaskRecord {
    let input = input_gb(iteration) * 1e9;
    let peak = tenant.factor * input + 5e8;
    TaskRecord {
        workflow: "serve".into(),
        task_type: tenant.task_type.clone(),
        machine: tenant.machine.clone(),
        sequence,
        input_bytes: input,
        peak_memory_bytes: peak,
        allocated_memory_bytes: peak * 1.5,
        runtime_seconds: 60.0,
        concurrent_tasks: 1,
        queue_delay_seconds: 0.0,
        outcome: TaskOutcome::Succeeded,
    }
}

fn submission_for(tenant: &Tenant, sequence: u64, iteration: u64) -> TaskSubmission {
    TaskSubmission {
        workflow: "serve".into(),
        task_type: tenant.task_type.clone(),
        machine: tenant.machine.clone(),
        sequence,
        input_bytes: input_gb(iteration) * 1e9,
        preset_memory_bytes: 20e9,
    }
}

// ---------------------------------------------------------------------------
// The closed loop.
// ---------------------------------------------------------------------------

/// One client thread's measured output for one level.
struct ClientRun {
    predict_ns: Vec<u64>,
    observe_submit_ns: Vec<u64>,
    /// Predicts issued inside the post-warmup measurement window.
    measured_predicts: u64,
}

/// Measured results of one ladder level.
struct LevelResult {
    offered_per_sec: u64,
    achieved_per_sec: f64,
    predict: LatencySummary,
    observe_submit: LatencySummary,
    /// Service-counter deltas across the level.
    accepted: u64,
    shed: u64,
    observed: u64,
    snapshots_published: u64,
    retrains_installed: u64,
    retrain_backlog: u64,
}

/// Runs one level: `threads` clients issue paced predicts (plus one observe
/// per `observe_every` predicts when `with_observes`) against `service` for
/// `seconds`, measuring latencies after the warm-up window.
#[allow(clippy::too_many_arguments)]
fn run_level(
    service: &AsyncSizey,
    tenants: &[Tenant],
    spec: &ServeSpec,
    threads: usize,
    offered_per_sec: u64,
    seconds: f64,
    with_observes: bool,
    sequence: &AtomicU64,
) -> (Vec<ClientRun>, f64) {
    let interval = (offered_per_sec > 0)
        .then(|| Duration::from_secs_f64(threads as f64 / offered_per_sec as f64));
    let warmup = Duration::from_secs_f64(seconds * spec.warmup_fraction);
    let duration = Duration::from_secs_f64(seconds);
    let started = Instant::now();
    let runs = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let sequence = &*sequence;
                scope.spawn(move || {
                    let mut run = ClientRun {
                        predict_ns: Vec::with_capacity(1 << 16),
                        observe_submit_ns: Vec::with_capacity(1 << 13),
                        measured_predicts: 0,
                    };
                    // This thread's tenant slice: t, t + threads, ...
                    let mine: Vec<&Tenant> = tenants.iter().skip(t).step_by(threads).collect();
                    let start = Instant::now();
                    let measure_at = start + warmup;
                    let end = start + duration;
                    let mut next_slot = start;
                    let mut iteration = t as u64;
                    loop {
                        let now = Instant::now();
                        if now >= end {
                            break;
                        }
                        let measuring = now >= measure_at;
                        let tenant = mine[(iteration as usize / threads) % mine.len()];
                        let seq = sequence.fetch_add(1, Ordering::Relaxed);

                        let task = submission_for(tenant, seq, iteration);
                        let t0 = Instant::now();
                        let prediction = service.predict(&task, AttemptContext::first());
                        let dt = t0.elapsed().as_nanos() as u64;
                        assert!(prediction.allocation_bytes > 0.0);
                        if measuring {
                            run.predict_ns.push(dt);
                            run.measured_predicts += 1;
                        }

                        if with_observes && iteration.is_multiple_of(spec.observe_every) {
                            let record = record_for(tenant, seq, iteration);
                            let t0 = Instant::now();
                            let _ = service.observe(&record);
                            let dt = t0.elapsed().as_nanos() as u64;
                            if measuring {
                                run.observe_submit_ns.push(dt);
                            }
                        }

                        iteration += threads as u64;
                        if let Some(step) = interval {
                            next_slot += step;
                            let now = Instant::now();
                            if next_slot > now {
                                std::thread::sleep(next_slot - now);
                            } else {
                                // Behind schedule: don't bank the deficit.
                                next_slot = now;
                            }
                        }
                    }
                    run
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Vec<_>>()
    });
    let elapsed = started.elapsed().as_secs_f64();
    // The measurement window is the level minus its warm-up.
    let measured_seconds = (elapsed - warmup.as_secs_f64()).max(1e-9);
    (runs, measured_seconds)
}

fn stats_delta(before: &ServiceStats, after: &ServiceStats) -> ServiceStats {
    ServiceStats {
        predicts: after.predicts - before.predicts,
        submitted: after.submitted - before.submitted,
        accepted: after.accepted - before.accepted,
        shed: after.shed - before.shed,
        observed: after.observed - before.observed,
        batches: after.batches - before.batches,
        snapshots_published: after.snapshots_published - before.snapshots_published,
        retrains_installed: after.retrains_installed - before.retrains_installed,
        retrain_backlog: after.retrain_backlog, // a gauge, not a counter
    }
}

fn json_level(level: &LevelResult) -> String {
    format!(
        "{{\"offered_predicts_per_sec\": {}, \"achieved_predicts_per_sec\": {:.1}, \
         \"predict_latency_us\": {}, \"observe_submit_latency_us\": {}, \
         \"accepted\": {}, \"shed\": {}, \"observed\": {}, \
         \"snapshots_published\": {}, \"retrains_installed\": {}, \
         \"retrain_backlog\": {}}}",
        level.offered_per_sec,
        level.achieved_per_sec,
        json_latency(&level.predict),
        json_latency(&level.observe_submit),
        level.accepted,
        level.shed,
        level.observed,
        level.snapshots_published,
        level.retrains_installed,
        level.retrain_backlog,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/bench/../../ == repository root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("BENCH_replay.json")
        });
    let spec = if smoke { SMOKE } else { FULL };
    run_serve(&spec, &out_path, smoke);
}

fn run_serve(spec: &ServeSpec, out_path: &Path, smoke: bool) {
    let config = service_config();
    println!("=== serve_bench ({} spec) ===", spec.mode);
    println!(
        "pinned workload: {} tenants over {} client threads, {} shards, \
         1 observe per {} predicts, {:.1} s per level",
        spec.tenants, spec.client_threads, spec.shards, spec.observe_every, spec.level_seconds
    );
    println!(
        "service: queue capacity {}, batch max {}, window {} us, shed admission, \
         deferred retrains (cap {}/batch)",
        config.queue_capacity,
        config.batch_max,
        config.batch_window.as_micros(),
        config.retrain_cap_per_batch
    );

    let tenants = build_tenants(spec.tenants);
    let sequence = AtomicU64::new(1);

    // Seed every tenant's pool before the clock starts, directly on the
    // sharded service (batched, no queue in the way), then wrap it: the
    // AsyncService publishes the warm state as its initial snapshots.
    let sizey_config = SizeyConfig::default().with_history_window(spec.history_window);
    let inner =
        ConcurrentPredictor::new(spec.shards, |_| SizeyPredictor::new(sizey_config.clone()));
    let seeds: Vec<TaskRecord> = tenants
        .iter()
        .flat_map(|tenant| {
            (0..spec.seed_records)
                .map(|i| record_for(tenant, sequence.fetch_add(1, Ordering::Relaxed), i * 3 + 1))
        })
        .collect();
    inner.observe_batch(&seeds);
    let service = AsyncService::new(inner, config);
    println!(
        "seeded {} records across {} tenants",
        seeds.len(),
        spec.tenants
    );

    // Baseline: quiescent service, one client, no observe traffic — the
    // uncontended snapshot predict percentiles.
    service.flush();
    let (runs, measured_seconds) = run_level(
        &service,
        &tenants,
        spec,
        1,
        0,
        spec.level_seconds / 2.0,
        false,
        &sequence,
    );
    let baseline_count: u64 = runs.iter().map(|r| r.measured_predicts).sum();
    let baseline_rate = baseline_count as f64 / measured_seconds;
    let baseline = summarize(runs.into_iter().flat_map(|r| r.predict_ns).collect());
    println!();
    println!("baseline (uncontended, 1 thread): {baseline_rate:.0} predicts/s");
    print_latency("baseline predict", &baseline);

    // The ladder: paced levels with live observe traffic.
    let mut levels: Vec<LevelResult> = Vec::new();
    for &offered in spec.levels {
        let before = service.stats();
        let (runs, measured_seconds) = run_level(
            &service,
            &tenants,
            spec,
            spec.client_threads,
            offered,
            spec.level_seconds,
            true,
            &sequence,
        );
        // Quiesce between levels so one level's backlog doesn't bleed into
        // the next level's measurement.
        service.flush();
        let after = service.stats();
        let delta = stats_delta(&before, &after);
        let measured: u64 = runs.iter().map(|r| r.measured_predicts).sum();
        let mut predict_ns = Vec::new();
        let mut observe_ns = Vec::new();
        for run in runs {
            predict_ns.extend(run.predict_ns);
            observe_ns.extend(run.observe_submit_ns);
        }
        let level = LevelResult {
            offered_per_sec: offered,
            achieved_per_sec: measured as f64 / measured_seconds,
            predict: summarize(predict_ns),
            observe_submit: summarize(observe_ns),
            accepted: delta.accepted,
            shed: delta.shed,
            observed: delta.observed,
            snapshots_published: delta.snapshots_published,
            retrains_installed: delta.retrains_installed,
            retrain_backlog: delta.retrain_backlog,
        };
        println!();
        if offered == 0 {
            println!(
                "level unthrottled: achieved {:.0} predicts/s",
                level.achieved_per_sec
            );
        } else {
            println!(
                "level {offered} predicts/s offered: achieved {:.0} predicts/s",
                level.achieved_per_sec
            );
        }
        print_latency("predict", &level.predict);
        print_latency("observe submit", &level.observe_submit);
        println!(
            "observes: {} accepted, {} shed, {} applied; {} snapshots, \
             {} retrains installed, backlog {}",
            level.accepted,
            level.shed,
            level.observed,
            level.snapshots_published,
            level.retrains_installed,
            level.retrain_backlog,
        );
        levels.push(level);
    }

    // Chaos level: pause one shard worker mid-level while full load
    // continues. The shard's queue backs up (shedding under the Shed policy),
    // the other shards keep serving, and after the resume a flush must drain
    // the backlog with exact accounting — nothing accepted is ever lost.
    let chaos_before = service.stats();
    let (chaos_runs, chaos_measured_seconds) = std::thread::scope(|scope| {
        let service = &service;
        scope.spawn(move || {
            let third = Duration::from_secs_f64(spec.level_seconds / 3.0);
            std::thread::sleep(third);
            service.pause_shard(0);
            std::thread::sleep(third);
            let backlog = service.queue_depths()[0];
            service.resume_shard(0);
            println!();
            println!("chaos: shard 0 paused for {third:?} mid-level, queue backlog {backlog}");
        });
        run_level(
            service,
            &tenants,
            spec,
            spec.client_threads,
            0,
            spec.level_seconds,
            true,
            &sequence,
        )
    });
    service.flush();
    assert!(
        service.queue_depths().iter().all(|&d| d == 0),
        "flush must drain every queue after the chaos resume"
    );
    let chaos_delta = stats_delta(&chaos_before, &service.stats());
    assert_eq!(
        chaos_delta.accepted + chaos_delta.shed,
        chaos_delta.submitted,
        "chaos level accounting must stay exact"
    );
    let chaos_predicts: u64 = chaos_runs.iter().map(|r| r.measured_predicts).sum();
    let chaos_rate = chaos_predicts as f64 / chaos_measured_seconds;
    println!(
        "chaos level: achieved {:.0} predicts/s; observes {} submitted = {} accepted + {} shed, \
         {} applied after flush",
        chaos_rate,
        chaos_delta.submitted,
        chaos_delta.accepted,
        chaos_delta.shed,
        chaos_delta.observed,
    );

    // Accounting invariants — the run is wrong, not slow, if these fail.
    let stats = service.stats();
    assert_eq!(
        stats.accepted + stats.shed,
        stats.submitted,
        "every observe submission must be accepted or shed"
    );
    assert_eq!(
        stats.observed, stats.accepted,
        "after the final flush every accepted observe must be applied"
    );
    let final_stats = service.shutdown();
    assert_eq!(
        final_stats.observed, final_stats.accepted,
        "accepted observes were lost across shutdown"
    );
    for level in &levels {
        assert!(level.predict.count > 0, "a level measured zero predicts");
    }

    let worst_loaded_p99 = levels
        .iter()
        .map(|l| l.predict.p99_us)
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "headline: uncontended predict p99 {:.1} us vs worst loaded p99 {:.1} us \
         (observe traffic {} records applied, {} retrains)",
        baseline.p99_us, worst_loaded_p99, final_stats.observed, final_stats.retrains_installed
    );

    let body = format!(
        "{{\"mode\": \"{}\", \
         \"workload\": {{\"tenants\": {}, \"client_threads\": {}, \"shards\": {}, \
         \"observe_every\": {}, \"seed_records\": {}, \"history_window\": {}, \
         \"level_seconds\": {}, \"warmup_fraction\": {}}}, \
         \"service\": {{\"queue_capacity\": {}, \"batch_max\": {}, \
         \"batch_window_us\": {}, \"admission\": \"shed\", \
         \"deferred_retrains\": true, \"retrain_cap_per_batch\": {}}}, \
         \"baseline_uncontended\": {{\"achieved_predicts_per_sec\": {:.1}, \
         \"predict_latency_us\": {}}}, \
         \"levels\": [{}], \
         \"chaos\": {{\"paused_shard\": 0, \"achieved_predicts_per_sec\": {:.1}, \
         \"submitted\": {}, \"accepted\": {}, \"shed\": {}, \"observed\": {}, \
         \"flush_drained\": true}}, \
         \"totals\": {{\"submitted\": {}, \"accepted\": {}, \"shed\": {}, \
         \"observed\": {}, \"snapshots_published\": {}, \"retrains_installed\": {}}}}}",
        spec.mode,
        spec.tenants,
        spec.client_threads,
        spec.shards,
        spec.observe_every,
        spec.seed_records,
        spec.history_window,
        spec.level_seconds,
        spec.warmup_fraction,
        service_config().queue_capacity,
        service_config().batch_max,
        service_config().batch_window.as_micros(),
        service_config().retrain_cap_per_batch,
        baseline_rate,
        json_latency(&baseline),
        levels.iter().map(json_level).collect::<Vec<_>>().join(", "),
        chaos_rate,
        chaos_delta.submitted,
        chaos_delta.accepted,
        chaos_delta.shed,
        chaos_delta.observed,
        final_stats.submitted,
        final_stats.accepted,
        final_stats.shed,
        final_stats.observed,
        final_stats.snapshots_published,
        final_stats.retrains_installed,
    );
    write_bench_json(out_path, "serve", &body);

    if smoke {
        // CI self-check: the scenario round-trips through the extractor the
        // other harnesses use to preserve it, i.e. the file stays a valid
        // multi-scenario document.
        let text = std::fs::read_to_string(out_path).expect("re-read BENCH_replay.json");
        let serve = extract_scenario(&text, "serve").expect("serve scenario must round-trip");
        assert!(serve.contains("\"levels\": ["));
        assert!(serve.contains("\"baseline_uncontended\""));
        assert!(serve.contains("\"chaos\""));
        println!("smoke self-check: serve scenario round-trips through the extractor");
    }
}
