//! `perf_replay` — the reproducible performance harness for the
//! predict/observe hot path.
//!
//! Replays a **pinned** multi-tenant sweep (fixed workflows, scale, seed,
//! policy and cluster — deliberately independent of the `SIZEY_BENCH_*`
//! environment variables, so two runs on different commits measure the same
//! workload) through the event-driven scheduler with one online-learning
//! Sizey predictor per tenant, and reports
//!
//! * end-to-end replay throughput in dispatched attempts per second,
//! * per-call latency percentiles of `MemoryPredictor::predict` and
//!   `MemoryPredictor::observe` (p50 / p90 / p99 / max, microseconds),
//!
//! then writes the measurement as `BENCH_replay.json` at the repository root
//! — one point of the perf trajectory tracked across commits.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p sizey-bench --bin perf_replay            # full pinned sweep
//! cargo run --release -p sizey-bench --bin perf_replay -- --smoke # small CI smoke spec
//! cargo run --release -p sizey-bench --bin perf_replay -- --out /tmp/bench.json
//! ```

use sizey_core::SizeyPredictor;
use sizey_sim::{
    schedule_workflows, AttemptContext, MemoryPredictor, Prediction, SchedulePolicy,
    SimulationConfig, TaskSubmission, WorkflowTenant,
};
use sizey_workflows::{all_workflows, generate_workflow, GeneratorConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sizey_provenance::TaskRecord;

/// The pinned harness parameters of one mode.
struct PinnedSpec {
    mode: &'static str,
    /// Fraction of the paper's task volume per workflow.
    scale: f64,
    /// Workload generation seed.
    seed: u64,
    /// Number of tenant workflows (taken in `all_workflows()` order).
    tenants: usize,
    /// Seconds between consecutive instance arrivals of one tenant.
    submit_interval_seconds: f64,
    /// Arrival stagger between tenants, in seconds.
    arrival_stagger_seconds: f64,
}

const FULL: PinnedSpec = PinnedSpec {
    mode: "full",
    scale: 0.5,
    seed: 42,
    tenants: 6,
    submit_interval_seconds: 5.0,
    arrival_stagger_seconds: 600.0,
};

const SMOKE: PinnedSpec = PinnedSpec {
    mode: "smoke",
    scale: 0.01,
    seed: 42,
    tenants: 2,
    submit_interval_seconds: 5.0,
    arrival_stagger_seconds: 60.0,
};

/// Regression gate applied in `--smoke` mode: the replay exits non-zero when
/// the observe p50 exceeds this ceiling. The incremental learning path puts
/// the full-spec observe p50 in the single-digit microseconds; the ceiling is
/// set an order of magnitude above that so shared CI runners never trip it on
/// noise, while a reversion to the former O(history)-per-observe behaviour
/// (~290 us p50) fails loudly.
const SMOKE_OBSERVE_P50_CEILING_US: f64 = 120.0;

/// Wraps a predictor and records the wall-clock duration of every `predict`
/// and `observe` call in nanoseconds. The handles are shared with the
/// harness, which reads them back after the replay consumed the tenants.
struct TimedPredictor<P> {
    inner: P,
    predict_ns: Arc<Mutex<Vec<u64>>>,
    observe_ns: Arc<Mutex<Vec<u64>>>,
}

impl<P: MemoryPredictor> MemoryPredictor for TimedPredictor<P> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn predict(&self, task: &TaskSubmission, ctx: AttemptContext) -> Prediction {
        let start = Instant::now();
        let prediction = self.inner.predict(task, ctx);
        let elapsed = start.elapsed().as_nanos() as u64;
        self.predict_ns.lock().expect("timer lock").push(elapsed);
        prediction
    }

    fn observe(&mut self, record: &TaskRecord) {
        let start = Instant::now();
        self.inner.observe(record);
        let elapsed = start.elapsed().as_nanos() as u64;
        self.observe_ns.lock().expect("timer lock").push(elapsed);
    }
}

/// Latency percentiles over one timer series, in microseconds.
struct LatencySummary {
    count: usize,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn summarize(mut nanos: Vec<u64>) -> LatencySummary {
    nanos.sort_unstable();
    let pick = |q: f64| -> f64 {
        if nanos.is_empty() {
            return 0.0;
        }
        let idx = (q * (nanos.len() - 1) as f64).round() as usize;
        nanos[idx.min(nanos.len() - 1)] as f64 / 1_000.0
    };
    LatencySummary {
        count: nanos.len(),
        p50_us: pick(0.50),
        p90_us: pick(0.90),
        p99_us: pick(0.99),
        max_us: nanos.last().map_or(0.0, |&n| n as f64 / 1_000.0),
    }
}

fn json_latency(s: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {:.3}, \"p90_us\": {:.3}, \"p99_us\": {:.3}, \"max_us\": {:.3}}}",
        s.count, s.p50_us, s.p90_us, s.p99_us, s.max_us
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let spec = if smoke { SMOKE } else { FULL };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/bench/../../ == repository root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("BENCH_replay.json")
        });

    println!("=== perf_replay ({} spec) ===", spec.mode);
    println!(
        "pinned workload: {} tenants, scale {}, seed {}, first-fit, \
         submit interval {} s, stagger {} s",
        spec.tenants,
        spec.scale,
        spec.seed,
        spec.submit_interval_seconds,
        spec.arrival_stagger_seconds
    );

    let generator = GeneratorConfig::scaled(spec.scale, spec.seed);
    let workflows = all_workflows();
    let predict_ns = Arc::new(Mutex::new(Vec::new()));
    let observe_ns = Arc::new(Mutex::new(Vec::new()));

    let tenants: Vec<WorkflowTenant> = workflows
        .iter()
        .cycle()
        .take(spec.tenants)
        .enumerate()
        .map(|(i, wf)| {
            let instances = generate_workflow(wf, &generator);
            WorkflowTenant::new(
                format!("{}-{i}", wf.name),
                instances,
                Box::new(TimedPredictor {
                    inner: SizeyPredictor::with_defaults(),
                    predict_ns: Arc::clone(&predict_ns),
                    observe_ns: Arc::clone(&observe_ns),
                }),
            )
            .with_arrival_offset(i as f64 * spec.arrival_stagger_seconds)
        })
        .collect();
    let total_instances: usize = tenants.iter().map(|t| t.instances.len()).sum();

    let sim = SimulationConfig {
        submit_interval_seconds: spec.submit_interval_seconds,
        ..SimulationConfig::default().with_policy(SchedulePolicy::FirstFit)
    };

    let start = Instant::now();
    let result = schedule_workflows(tenants, &sim);
    let wall_seconds = start.elapsed().as_secs_f64();

    let attempts = result.stats.dispatched_attempts;
    let throughput = attempts as f64 / wall_seconds;
    let predict = summarize(
        Arc::try_unwrap(predict_ns)
            .expect("replay dropped its timer handles")
            .into_inner()
            .expect("timer lock"),
    );
    let observe = summarize(
        Arc::try_unwrap(observe_ns)
            .expect("replay dropped its timer handles")
            .into_inner()
            .expect("timer lock"),
    );

    println!();
    println!(
        "replayed {total_instances} instances / {attempts} attempts in {wall_seconds:.3} s \
         ({throughput:.0} attempts/s)"
    );
    println!(
        "predict latency: p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, max {:.1} us ({} calls)",
        predict.p50_us, predict.p90_us, predict.p99_us, predict.max_us, predict.count
    );
    println!(
        "observe latency: p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, max {:.1} us ({} calls)",
        observe.p50_us, observe.p90_us, observe.p99_us, observe.max_us, observe.count
    );

    let json = format!(
        "{{\n  \"schema\": \"sizey-perf-replay/v1\",\n  \"mode\": \"{}\",\n  \
         \"workload\": {{\"tenants\": {}, \"scale\": {}, \"seed\": {}, \
         \"policy\": \"first-fit\", \"submit_interval_seconds\": {}, \
         \"arrival_stagger_seconds\": {}}},\n  \
         \"instances\": {},\n  \"attempts\": {},\n  \"wall_seconds\": {:.6},\n  \
         \"throughput_attempts_per_sec\": {:.3},\n  \
         \"makespan_seconds\": {:.3},\n  \
         \"predict_latency_us\": {},\n  \"observe_latency_us\": {}\n}}\n",
        spec.mode,
        spec.tenants,
        spec.scale,
        spec.seed,
        spec.submit_interval_seconds,
        spec.arrival_stagger_seconds,
        total_instances,
        attempts,
        wall_seconds,
        throughput,
        result.makespan_seconds,
        json_latency(&predict),
        json_latency(&observe),
    );
    std::fs::write(&out_path, json).expect("write BENCH_replay.json");
    println!();
    println!("wrote {}", out_path.display());

    // CI latency gate: only in smoke mode (the full sweep is a measurement,
    // not a check), and only after the JSON landed so a failing run still
    // leaves its numbers behind for diagnosis.
    if smoke {
        if observe.p50_us > SMOKE_OBSERVE_P50_CEILING_US {
            eprintln!(
                "FAIL: smoke observe p50 {:.1} us exceeds the {:.0} us regression ceiling",
                observe.p50_us, SMOKE_OBSERVE_P50_CEILING_US
            );
            std::process::exit(1);
        }
        println!(
            "observe p50 gate: {:.1} us <= {:.0} us ceiling",
            observe.p50_us, SMOKE_OBSERVE_P50_CEILING_US
        );
    }
}
